"""Atomic hot snapshot swap: build offline, ship, verify, flip under load.

Production indexes are rebuilt offline (re-parameterized, compacted,
re-sharded) and shipped to servers as snapshot directories
(:mod:`repro.engine.snapshot`).  This module rolls such a snapshot into a
live server without dropping a request:

1. **Load off the serving path.**  The replacement
   :class:`~repro.api.FairNN` is reconstructed from the snapshot in a
   background thread; serving threads never wait on deserialization.
2. **Verify before flip.**  A probe batch is answered by both the serving
   facade and the loaded one.  For query-deterministic samplers the answers
   must be *byte-identical* (indices and measure values); samplers with
   query-time randomness cannot be compared draw-for-draw, so each probe
   answer of the replacement is instead checked for validity — the returned
   index must lie in the replacement's exact neighborhood of the probe.
   Any mismatch aborts the swap and the old index keeps serving.
3. **RCU flip + drain.**  The serving reference is swapped atomically (one
   attribute write): requests that already entered the old generation finish
   on it untouched, the next request acquires the new one.  The retired
   generation is drained — once its in-flight count reaches zero its
   engines' worker pools are closed deterministically.

Verification presumes the snapshot describes the *currently served* index
state (the build-offline/ship/flip workflow).  Swapping to a snapshot taken
before subsequent online mutations will fail verification for deterministic
samplers — exactly the guard an operator wants — and ``verify=False``
exists for deliberate index replacement.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.api import FairNN
from repro.exceptions import InvalidParameterError, ReproError
from repro.types import Point

__all__ = [
    "Generation",
    "ServingHandle",
    "SnapshotSwapper",
    "SwapInProgressError",
    "SwapReport",
    "SwapVerificationError",
]


class SwapInProgressError(ReproError):
    """Raised when a swap is requested while another one is still running."""


class SwapVerificationError(ReproError):
    """Raised when the probe batch disagrees between old and new indexes."""


class Generation:
    """One serving generation: a facade plus its in-flight request count.

    Request threads enter through :meth:`try_enter` / :meth:`leave` (the
    :class:`ServingHandle` wraps this in a context manager).  After
    :meth:`retire`, no new request may enter and the generation's engines
    are closed as soon as the last in-flight request leaves — the drain step
    of the swap protocol.
    """

    __slots__ = ("nn", "number", "_inflight", "_retired", "_closed", "_lock")

    def __init__(self, nn: FairNN, number: int):
        self.nn = nn
        self.number = number
        self._inflight = 0
        self._retired = False
        self._closed = False
        self._lock = threading.Lock()

    def try_enter(self) -> bool:
        """Register one in-flight request; refused once retired."""
        with self._lock:
            if self._retired:
                return False
            self._inflight += 1
            return True

    def leave(self) -> None:
        """Unregister one in-flight request; closes a drained retiree."""
        with self._lock:
            self._inflight -= 1
            close = self._retired and self._inflight == 0 and not self._closed
            if close:
                self._closed = True
        if close:
            self._close_engines()

    def retire(self) -> None:
        """Stop admitting requests; close engines once drained."""
        with self._lock:
            if self._retired:
                return
            self._retired = True
            close = self._inflight == 0 and not self._closed
            if close:
                self._closed = True
        if close:
            self._close_engines()

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._inflight

    @property
    def retired(self) -> bool:
        with self._lock:
            return self._retired

    def _close_engines(self) -> None:
        # Duck-typed on purpose: generations also wrap facade test doubles
        # that expose only ``engines``.  ``FairNN.close()`` is the same
        # recipe for library callers.
        for engine in self.nn.engines.values():
            close = getattr(engine, "close", None)
            if close is not None:
                close()


class _GenerationContext:
    """``with handle.acquire() as nn:`` — enter/leave bracketing."""

    __slots__ = ("generation",)

    def __init__(self, generation: Generation):
        self.generation = generation

    def __enter__(self) -> FairNN:
        return self.generation.nn

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.generation.leave()


class ServingHandle:
    """RCU-style reference to the live serving generation.

    Readers call :meth:`acquire` (a context manager yielding the facade);
    the swapper calls :meth:`flip` with a replacement facade.  A reader that
    races a flip simply retries on the new generation — entry into a retired
    generation is refused, so a generation's engines are only ever closed
    after its last reader left.
    """

    def __init__(self, nn: FairNN):
        self._generation = Generation(nn, 1)
        self._flip_lock = threading.Lock()

    @property
    def generation(self) -> Generation:
        """The current generation (snapshot read; may retire at any time)."""
        return self._generation

    @property
    def nn(self) -> FairNN:
        """The currently serving facade (for non-bracketed, read-only peeks)."""
        return self._generation.nn

    def acquire(self) -> _GenerationContext:
        """Enter the live generation; guaranteed not to close mid-request."""
        while True:
            generation = self._generation
            if generation.try_enter():
                return _GenerationContext(generation)

    def flip(self, nn: FairNN) -> Generation:
        """Atomically make *nn* the serving facade; retire the old generation."""
        with self._flip_lock:
            old = self._generation
            self._generation = Generation(nn, old.number + 1)
        old.retire()
        return old


@dataclass
class SwapReport:
    """Outcome (or progress) of one snapshot swap."""

    snapshot: str
    status: str = "pending"  # pending -> loading -> verifying -> completed | failed
    generation: Optional[int] = None
    load_seconds: Optional[float] = None
    verify_seconds: Optional[float] = None
    probes: int = 0
    compared_identical: int = 0
    checked_validity: int = 0
    old_live_points: Optional[int] = None
    new_live_points: Optional[int] = None
    error: Optional[str] = None
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def to_dict(self) -> Dict:
        with self._lock:
            return {
                "snapshot": self.snapshot,
                "status": self.status,
                "generation": self.generation,
                "load_seconds": self.load_seconds,
                "verify_seconds": self.verify_seconds,
                "probes": self.probes,
                "compared_identical": self.compared_identical,
                "checked_validity": self.checked_validity,
                "old_live_points": self.old_live_points,
                "new_live_points": self.new_live_points,
                "error": self.error,
            }


class SnapshotSwapper:
    """Coordinates hot snapshot swaps over one :class:`ServingHandle`.

    At most one swap runs at a time (:class:`SwapInProgressError` otherwise).
    The load/verify/flip pipeline always runs on a dedicated thread;
    :meth:`swap` with ``wait=True`` (the default) joins it and returns the
    final :class:`SwapReport`, ``wait=False`` returns the in-progress report
    immediately (poll :attr:`last_report`).
    """

    def __init__(self, handle: ServingHandle, probe_count: int = 8):
        if probe_count < 1:
            raise InvalidParameterError(f"probe_count must be >= 1, got {probe_count}")
        self.handle = handle
        self.probe_count = int(probe_count)
        self._busy = threading.Lock()
        self._report: Optional[SwapReport] = None
        self._load = FairNN.load  # injectable for tests

    @property
    def last_report(self) -> Optional[Dict]:
        """The most recent (possibly in-progress) swap report, as a dict."""
        report = self._report
        return None if report is None else report.to_dict()

    # ------------------------------------------------------------------
    def swap(
        self,
        directory,
        probes: Optional[Sequence[Point]] = None,
        verify: bool = True,
        wait: bool = True,
    ) -> Dict:
        """Roll the snapshot at *directory* into service.

        Raises :class:`SwapInProgressError` when another swap is running.
        With ``wait=True`` the returned report is final; a ``failed`` status
        means the old index kept serving (the error field says why).
        """
        if not self._busy.acquire(blocking=False):
            raise SwapInProgressError(
                "a snapshot swap is already in progress; retry after it completes"
            )
        report = SwapReport(snapshot=str(directory))
        self._report = report
        worker = threading.Thread(
            target=self._run,
            args=(directory, report, None if probes is None else list(probes), verify),
            name="repro-snapshot-swap",
            daemon=True,
        )
        worker.start()
        if wait:
            worker.join()
        return report.to_dict()

    # ------------------------------------------------------------------
    def _run(
        self,
        directory,
        report: SwapReport,
        probes: Optional[List[Point]],
        verify: bool,
    ) -> None:
        try:
            with report._lock:
                report.status = "loading"
            started = time.perf_counter()
            replacement = self._load(directory)
            load_seconds = time.perf_counter() - started
            with report._lock:
                report.load_seconds = round(load_seconds, 6)
                report.status = "verifying"

            current = self.handle.nn
            with report._lock:
                report.old_live_points = current.num_live_points
                report.new_live_points = replacement.num_live_points
            if verify:
                started = time.perf_counter()
                compared, checked, used = self._verify(current, replacement, probes)
                with report._lock:
                    report.verify_seconds = round(time.perf_counter() - started, 6)
                    report.probes = used
                    report.compared_identical = compared
                    report.checked_validity = checked

            old = self.handle.flip(replacement)
            with report._lock:
                report.generation = old.number + 1
                report.status = "completed"
        except Exception as exc:  # noqa: BLE001 - reported, not swallowed
            with report._lock:
                report.status = "failed"
                report.error = f"{type(exc).__name__}: {exc}"
        finally:
            self._busy.release()

    # ------------------------------------------------------------------
    def _default_probes(self, nn: FairNN) -> List[Point]:
        """Up to ``probe_count`` live points of the serving index."""
        tables = nn.tables
        dataset = getattr(tables, "dataset", None)
        alive = getattr(tables, "alive", None)
        if dataset is None:
            dataset = nn._dataset or []
        probes: List[Point] = []
        for slot, point in enumerate(dataset):
            if point is None:
                continue
            if alive is not None and not alive[slot]:
                continue
            probes.append(point)
            if len(probes) >= self.probe_count:
                break
        return probes

    def _verify(
        self,
        current: FairNN,
        replacement: FairNN,
        probes: Optional[List[Point]],
    ):
        """Probe-batch equivalence check; raises on any disagreement."""
        if probes is None:
            probes = self._default_probes(current)
        if not probes:
            raise SwapVerificationError("no probe points available to verify the swap")
        shared = [
            name for name in current.sampler_names if name in replacement.sampler_names
        ]
        if not shared:
            raise SwapVerificationError(
                "old and new indexes share no sampler names; refusing to flip"
            )
        compared = 0
        checked = 0
        for name in shared:
            deterministic = getattr(
                replacement.samplers[name], "deterministic_queries", False
            )
            new_responses = replacement.run(list(probes), sampler=name)
            if deterministic:
                old_responses = current.run(list(probes), sampler=name)
                for position, (old, new) in enumerate(zip(old_responses, new_responses)):
                    if old.indices != new.indices or old.value != new.value:
                        raise SwapVerificationError(
                            f"probe {position} disagrees for sampler {name!r}: "
                            f"serving={old.indices}/{old.value} "
                            f"snapshot={new.indices}/{new.value}"
                        )
                    compared += 1
            else:
                for position, (probe, new) in enumerate(zip(probes, new_responses)):
                    if new.index is not None:
                        neighborhood = set(
                            int(i) for i in replacement.neighborhood(probe, sampler=name)
                        )
                        if int(new.index) not in neighborhood:
                            raise SwapVerificationError(
                                f"probe {position} invalid for sampler {name!r}: "
                                f"index {new.index} is outside the exact neighborhood"
                            )
                    checked += 1
        return compared, checked, len(probes)

"""HTTP serving surface: capacity-accounted, quota'd, hot-swappable.

The subsystem layers three concerns over the :class:`~repro.api.FairNN`
facade, each usable on its own:

- :mod:`repro.server.capacity` — slot/memory accounting with over-commit,
  per-sampler token-bucket quotas, and a bounded in-flight queue
  (backpressure surfaces as 429 + ``Retry-After``).
- :mod:`repro.server.swap` — RCU-style generations with probe-verified
  atomic snapshot swaps under live traffic.
- :mod:`repro.server.app` / :mod:`repro.server.client` — the stdlib
  ``http.server`` front-end and its ``urllib`` client.
- :mod:`repro.server.blocks` — the block server feeding the ``remote``
  store tier (:mod:`repro.store`).
"""

from repro.exceptions import ServerTimeoutError
from repro.server.app import FairNNServer, decode_point, encode_point
from repro.server.blocks import BlockServer
from repro.server.capacity import CapacityModel, TokenBucket
from repro.server.client import FairNNClient, ServerHTTPError
from repro.server.swap import (
    Generation,
    ServingHandle,
    SnapshotSwapper,
    SwapInProgressError,
    SwapReport,
    SwapVerificationError,
)

__all__ = [
    "BlockServer",
    "CapacityModel",
    "FairNNClient",
    "FairNNServer",
    "Generation",
    "ServerHTTPError",
    "ServerTimeoutError",
    "ServingHandle",
    "SnapshotSwapper",
    "SwapInProgressError",
    "SwapReport",
    "SwapVerificationError",
    "TokenBucket",
    "decode_point",
    "encode_point",
]

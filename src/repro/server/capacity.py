"""Capacity accounting and admission control for the HTTP serving surface.

The serving front-end treats the index like a resource pod: a budget of
point *slots* and *memory*, an over-commit ratio that stretches the nominal
budget (indexes tolerate controlled oversubscription the way hypervisor
pods oversubscribe cores), per-sampler token-bucket query quotas, and a
bounded in-flight request queue.  :class:`CapacityModel` owns all four and
renders them in the ``total/used/available`` shape of the MAAS pods API, so
operators read one familiar schema::

    {
      "total":     {"points": 1500, "memory_bytes": ...},
      "used":      {"points": 1212, "memory_bytes": ...},
      "available": {"points": 288,  "memory_bytes": ...},
      "over_commit_ratio": 1.5,
      ...
    }

Admission failures raise :class:`~repro.exceptions.CapacityExceededError`
(or its subclass :class:`~repro.exceptions.QuotaExceededError`), carrying a
``retry_after`` hint the HTTP layer turns into ``429`` + ``Retry-After``.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

from repro.exceptions import (
    CapacityExceededError,
    InvalidParameterError,
    QuotaExceededError,
)

__all__ = ["TokenBucket", "CapacityModel"]


class TokenBucket:
    """A thread-safe token bucket: ``burst`` capacity refilled at ``rate``/s.

    Every admitted query costs one token (a batch of ``m`` queries costs
    ``m``).  When the bucket cannot cover a request,
    :meth:`try_acquire` reports the seconds until enough tokens will have
    accumulated — the ``Retry-After`` the HTTP layer surfaces.

    Parameters
    ----------
    rate:
        Refill rate in tokens per second (> 0).
    burst:
        Bucket capacity — the largest instantaneous spend (>= 1).  A request
        costing more than *burst* can still be admitted eventually: tokens
        are allowed to accumulate beyond *burst* only transiently during the
        computation of its retry hint, so such requests are rejected with a
        finite ``retry_after`` of ``(cost - tokens) / rate`` and callers are
        expected to split the batch.
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        if not rate > 0:
            raise InvalidParameterError(f"quota rate must be > 0 tokens/s, got {rate!r}")
        if not burst >= 1:
            raise InvalidParameterError(f"quota burst must be >= 1 token, got {burst!r}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()
        self._lock = threading.Lock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._stamp)
        self._stamp = now
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)

    @property
    def tokens(self) -> float:
        """Tokens currently available (refilled to now)."""
        with self._lock:
            self._refill()
            return self._tokens

    def try_acquire(self, cost: float = 1.0) -> Optional[float]:
        """Spend *cost* tokens; returns ``None`` on success.

        On failure returns the suggested back-off in seconds — the time
        until the bucket will hold *cost* tokens at the current rate.
        """
        if cost <= 0:
            return None
        with self._lock:
            self._refill()
            if self._tokens >= cost:
                self._tokens -= cost
                return None
            return (cost - self._tokens) / self.rate

    def to_dict(self) -> Dict:
        """The bucket's configuration and live level, JSON-serializable."""
        return {
            "rate_per_s": self.rate,
            "burst": self.burst,
            "tokens": round(self.tokens, 3),
        }


class CapacityModel:
    """Slot/memory budget, over-commit, per-sampler quotas, bounded queue.

    One instance guards one serving facade.  All limits are optional: the
    default model is unlimited (every admission succeeds) but still reports
    live occupancy, so a server is observable before it is constrained.

    Parameters
    ----------
    slot_capacity:
        Nominal point-slot budget, before over-commit.  ``None`` = unlimited.
    memory_capacity_bytes:
        Nominal index-memory budget, before over-commit.  ``None`` =
        unlimited.  Only enforced when the index reports its memory
        (:meth:`FairNN.capacity <repro.api.FairNN.capacity>` returns
        ``memory_bytes``); an index without a columnar store is admitted on
        slots alone.
    over_commit_ratio:
        Multiplier (>= 1) applied to both nominal budgets, in the spirit of
        pod ``cpu_over_commit_ratio`` / ``memory_over_commit_ratio``: the
        *effective* total is ``floor(nominal * ratio)``.
    default_quota:
        ``(rate_per_s, burst)`` token-bucket parameters applied to any
        sampler without an explicit entry in *quotas*.  ``None`` = no
        default quota.
    quotas:
        Mapping of sampler name to ``(rate_per_s, burst)``.
    max_inflight:
        Bound on concurrently executing work requests (the request queue).
        ``None`` = unbounded.
    retry_after:
        Back-off hint (seconds) for slot/memory/queue rejections, where no
        refill schedule exists to compute one from.
    clock:
        Monotonic time source shared by all quota buckets (injectable).
    """

    def __init__(
        self,
        slot_capacity: Optional[int] = None,
        memory_capacity_bytes: Optional[int] = None,
        over_commit_ratio: float = 1.0,
        default_quota: Optional[tuple] = None,
        quotas: Optional[Dict[str, tuple]] = None,
        max_inflight: Optional[int] = None,
        retry_after: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if slot_capacity is not None and slot_capacity < 1:
            raise InvalidParameterError(
                f"slot_capacity must be >= 1 (or None for unlimited), got {slot_capacity!r}"
            )
        if memory_capacity_bytes is not None and memory_capacity_bytes < 1:
            raise InvalidParameterError(
                "memory_capacity_bytes must be >= 1 (or None for unlimited), "
                f"got {memory_capacity_bytes!r}"
            )
        if not over_commit_ratio >= 1.0:
            raise InvalidParameterError(
                f"over_commit_ratio must be >= 1.0, got {over_commit_ratio!r}"
            )
        if max_inflight is not None and max_inflight < 0:
            raise InvalidParameterError(
                f"max_inflight must be >= 0 (or None for unbounded), got {max_inflight!r}"
            )
        if not retry_after > 0:
            raise InvalidParameterError(f"retry_after must be > 0, got {retry_after!r}")
        self.slot_capacity = None if slot_capacity is None else int(slot_capacity)
        self.memory_capacity_bytes = (
            None if memory_capacity_bytes is None else int(memory_capacity_bytes)
        )
        self.over_commit_ratio = float(over_commit_ratio)
        self.retry_after = float(retry_after)
        self.max_inflight = None if max_inflight is None else int(max_inflight)
        self._clock = clock
        self._default_quota = default_quota
        self._quota_params = dict(quotas or {})
        self._buckets: Dict[str, TokenBucket] = {}
        self._buckets_lock = threading.Lock()
        self._inflight = 0
        self._inflight_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Effective budgets
    # ------------------------------------------------------------------
    @property
    def total_slots(self) -> Optional[int]:
        """Effective slot budget after over-commit (``None`` = unlimited)."""
        if self.slot_capacity is None:
            return None
        return int(self.slot_capacity * self.over_commit_ratio)

    @property
    def total_memory_bytes(self) -> Optional[int]:
        """Effective memory budget after over-commit (``None`` = unlimited)."""
        if self.memory_capacity_bytes is None:
            return None
        return int(self.memory_capacity_bytes * self.over_commit_ratio)

    # ------------------------------------------------------------------
    # Quotas
    # ------------------------------------------------------------------
    def bucket_for(self, sampler: str) -> Optional[TokenBucket]:
        """The sampler's quota bucket (created on first use), or ``None``."""
        params = self._quota_params.get(sampler, self._default_quota)
        if params is None:
            return None
        with self._buckets_lock:
            bucket = self._buckets.get(sampler)
            if bucket is None:
                rate, burst = params
                bucket = TokenBucket(rate, burst, clock=self._clock)
                self._buckets[sampler] = bucket
            return bucket

    def admit_queries(self, sampler: str, count: int) -> None:
        """Charge *count* queries against the sampler's quota.

        Raises :class:`~repro.exceptions.QuotaExceededError` (with the
        bucket's refill time as ``retry_after``) when the quota is
        exhausted.  Samplers without a quota are always admitted.
        """
        bucket = self.bucket_for(sampler)
        if bucket is None:
            return
        retry_after = bucket.try_acquire(float(count))
        if retry_after is not None:
            raise QuotaExceededError(
                f"quota exhausted for sampler {sampler!r} "
                f"({count} queries over a {bucket.rate}/s budget)",
                retry_after=max(retry_after, 0.001),
            )

    # ------------------------------------------------------------------
    # Slot / memory admission
    # ------------------------------------------------------------------
    def admit_insert(self, count: int, occupancy: Dict) -> None:
        """Admit an insert batch of *count* points against the budgets.

        *occupancy* is :meth:`FairNN.capacity <repro.api.FairNN.capacity>`'s
        dict.  Slots are charged against **allocated** slots (live plus
        not-yet-compacted tombstones — what the index actually holds);
        memory is charged per-point pro-rata from the reported resident
        bytes.  Raises :class:`~repro.exceptions.CapacityExceededError` when
        either effective budget would be exceeded.
        """
        total_slots = self.total_slots
        used_slots = int(occupancy.get("total_slots") or 0)
        if total_slots is not None and used_slots + count > total_slots:
            raise CapacityExceededError(
                f"insert of {count} points would exceed the slot budget "
                f"({used_slots} used of {total_slots} total after "
                f"{self.over_commit_ratio}x over-commit)",
                retry_after=self.retry_after,
            )
        total_memory = self.total_memory_bytes
        memory_bytes = occupancy.get("memory_bytes")
        if total_memory is not None and memory_bytes is not None and used_slots > 0:
            projected = memory_bytes * (used_slots + count) / used_slots
            if projected > total_memory:
                raise CapacityExceededError(
                    f"insert of {count} points would exceed the memory budget "
                    f"(~{int(projected)} of {total_memory} bytes after "
                    f"{self.over_commit_ratio}x over-commit)",
                    retry_after=self.retry_after,
                )

    # ------------------------------------------------------------------
    # Bounded request queue
    # ------------------------------------------------------------------
    def enter_request(self) -> None:
        """Admit one work request into the bounded in-flight queue.

        Raises :class:`~repro.exceptions.CapacityExceededError` when
        ``max_inflight`` requests are already executing.  Every successful
        call must be paired with :meth:`exit_request`.
        """
        with self._inflight_lock:
            if self.max_inflight is not None and self._inflight >= self.max_inflight:
                raise CapacityExceededError(
                    f"request queue full ({self._inflight} in flight, "
                    f"max_inflight={self.max_inflight})",
                    retry_after=self.retry_after,
                )
            self._inflight += 1

    def exit_request(self) -> None:
        """Release one slot of the bounded in-flight queue."""
        with self._inflight_lock:
            self._inflight = max(0, self._inflight - 1)

    @property
    def in_flight(self) -> int:
        """Work requests currently executing."""
        with self._inflight_lock:
            return self._inflight

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def snapshot(self, occupancy: Dict) -> Dict:
        """The MAAS-pods-style capacity rendering of ``GET /v1/capacity``.

        *occupancy* is :meth:`FairNN.capacity <repro.api.FairNN.capacity>`'s
        dict for the currently served index.  ``total`` and ``available``
        fields are ``None`` for unlimited budgets; ``available`` never
        reports below zero (over-budget states are visible as
        ``used > total``).
        """
        used_points = int(occupancy.get("total_slots") or 0)
        used_memory = occupancy.get("memory_bytes")
        total_points = self.total_slots
        total_memory = self.total_memory_bytes
        available_points = (
            None if total_points is None else max(0, total_points - used_points)
        )
        if total_memory is None or used_memory is None:
            available_memory = None
        else:
            available_memory = max(0, total_memory - int(used_memory))
        with self._buckets_lock:
            quota_names = set(self._buckets) | set(self._quota_params)
        return {
            "total": {"points": total_points, "memory_bytes": total_memory},
            "used": {"points": used_points, "memory_bytes": used_memory},
            "available": {"points": available_points, "memory_bytes": available_memory},
            "over_commit_ratio": self.over_commit_ratio,
            "live_points": int(occupancy.get("live_points") or 0),
            "pending_tombstones": int(occupancy.get("pending_tombstones") or 0),
            "n_shards": int(occupancy.get("n_shards") or 1),
            "quotas": {
                name: bucket.to_dict()
                for name in sorted(quota_names)
                if (bucket := self.bucket_for(name)) is not None
            },
            "queue": {
                "max_inflight": self.max_inflight,
                "in_flight": self.in_flight,
            },
        }

"""HTTP/JSON serving surface over the :class:`~repro.api.FairNN` facade.

A stdlib-only front-end (``http.server.ThreadingHTTPServer``; no new
dependencies): each request runs on its own handler thread, enters the
current serving generation through an RCU handle (so hot snapshot swaps
never invalidate an in-flight request), passes the capacity model's
admission control, and is answered through the facade's batched engines.

Endpoints
---------
``GET /healthz``
    Liveness: serving generation, live points, wire point kind, samplers.
``GET /v1/stats``
    Per-sampler :meth:`~repro.engine.batch.BatchQueryEngine.stats_dict`.
``GET /v1/capacity``
    The MAAS-pods-style ``total/used/available`` capacity rendering.
``POST /v1/sample``
    One sampling request: ``{"query": ..., "sampler"?, "k"?,
    "replacement"?, "exclude_index"?}``.
``POST /v1/sample_batch``
    ``{"queries": [...], ...}`` — answered as **one** engine batch, so the
    coalescing/vectorized-hashing amortizations (and, sharded, the worker
    pool) apply exactly as for an in-process ``FairNN.run``.
``POST /v1/mutate``
    ``{"op": "insert", "points": [...]}`` or ``{"op": "delete", "index": i}``.
``POST /v1/mutate`` also accepts an ``"idempotency_key"`` string: a retried
mutation carrying the same key returns the original result instead of
applying twice (the key is journaled, so the dedup window survives a crash
and recovery).

``POST /v1/admin/swap`` / ``GET /v1/admin/swap``
    Trigger / observe an atomic hot snapshot swap (see
    :mod:`repro.server.swap`).  Trusted-operator surface: it loads a
    snapshot directory (which unpickles hash functions and samplers), so
    deployments expose it only inside the trust boundary — optionally
    fenced to a configured ``snapshot_root``.
``POST /v1/admin/checkpoint``
    Write a durable checkpoint of the serving facade and truncate the
    journaled WAL prefix (requires a facade served with a ``data_dir``).

Error mapping: the typed mutation errors surface as 4xx —
:class:`~repro.exceptions.SlotOutOfRangeError` → 404,
:class:`~repro.exceptions.AlreadyDeletedError` → 410,
:class:`~repro.exceptions.InvalidParameterError` → 400 — admission
failures (:class:`~repro.exceptions.CapacityExceededError` /
:class:`~repro.exceptions.QuotaExceededError`) → 429 with a ``Retry-After``
header, and a failed WAL append
(:class:`~repro.exceptions.WALWriteError`; the mutation was **not**
applied) → 507 Insufficient Storage.

Wire format for points: JSON arrays.  Set-valued datasets decode arrays as
``frozenset`` of ints; dense datasets as float64 vectors (JSON floats
round-trip float64 exactly, so served answers are byte-identical to
in-process calls).
"""

from __future__ import annotations

import json
import pathlib
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.api import FairNN
from repro.engine.requests import QueryRequest
from repro.exceptions import (
    AlreadyDeletedError,
    CapacityExceededError,
    InvalidParameterError,
    NotFittedError,
    QuotaExceededError,
    ReproError,
    SlotOutOfRangeError,
    WALWriteError,
    WorkerCrashedError,
)
from repro.server.capacity import CapacityModel
from repro.server.swap import ServingHandle, SnapshotSwapper, SwapInProgressError
from repro.types import Point

__all__ = ["FairNNServer", "decode_point", "encode_point"]

#: Largest accepted request body; protects the JSON parser from abuse.
MAX_BODY_BYTES = 64 * 1024 * 1024


# ----------------------------------------------------------------------
# Wire encoding of points
# ----------------------------------------------------------------------
def point_kind(nn: FairNN) -> str:
    """The wire kind of the facade's points: ``"set"`` or ``"dense"``."""
    dataset = getattr(nn.tables, "dataset", None)
    if dataset is None:
        dataset = nn._dataset
    if dataset is None:
        dataset = []
    for point in dataset:
        if point is None:
            continue
        return "set" if isinstance(point, (set, frozenset)) else "dense"
    return "dense"


def decode_point(value, kind: str) -> Point:
    """Decode one JSON array into a dataset-compatible point."""
    if not isinstance(value, (list, tuple)):
        raise InvalidParameterError(
            f"a point must be a JSON array, got {type(value).__name__}"
        )
    if kind == "set":
        try:
            return frozenset(int(item) for item in value)
        except (TypeError, ValueError):
            raise InvalidParameterError("set points must be arrays of integers") from None
    try:
        return np.asarray(value, dtype=np.float64)
    except (TypeError, ValueError):
        raise InvalidParameterError("dense points must be arrays of numbers") from None


def encode_point(point: Point) -> List:
    """Encode one point as a JSON array (inverse of :func:`decode_point`)."""
    if isinstance(point, (set, frozenset)):
        return sorted(int(item) for item in point)
    return np.asarray(point, dtype=np.float64).tolist()


# ----------------------------------------------------------------------
# HTTP plumbing
# ----------------------------------------------------------------------
class _HTTPError(Exception):
    """Internal: carries a status + JSON payload up to the handler."""

    def __init__(self, status: int, message: str, retry_after: Optional[float] = None):
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


def _map_exception(exc: Exception) -> _HTTPError:
    """Translate library exceptions into HTTP statuses."""
    if isinstance(exc, (QuotaExceededError, CapacityExceededError)):
        return _HTTPError(429, str(exc), retry_after=exc.retry_after)
    if isinstance(exc, SlotOutOfRangeError):
        return _HTTPError(404, str(exc))
    if isinstance(exc, AlreadyDeletedError):
        return _HTTPError(410, str(exc))
    if isinstance(exc, SwapInProgressError):
        return _HTTPError(409, str(exc))
    if isinstance(exc, NotFittedError):
        return _HTTPError(503, str(exc))
    if isinstance(exc, WorkerCrashedError):
        # A shard worker died mid-batch; the supervisor has already
        # restarted it, so the condition is transient — retryable.
        return _HTTPError(503, str(exc), retry_after=1.0)
    if isinstance(exc, WALWriteError):
        # The journal append failed (disk full, I/O error); the mutation was
        # NOT applied.  507 Insufficient Storage: retry after the operator
        # frees space — not a client error and not an engine crash.
        return _HTTPError(507, str(exc))
    if isinstance(exc, InvalidParameterError):
        return _HTTPError(400, str(exc))
    if isinstance(exc, ReproError):
        return _HTTPError(500, f"{type(exc).__name__}: {exc}")
    return _HTTPError(500, f"internal error: {type(exc).__name__}: {exc}")


class _ServerCore(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying a reference to the owning front-end."""

    daemon_threads = True
    allow_reuse_address = True
    app: "FairNNServer"


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: _ServerCore

    # Quiet by default; FairNNServer(verbose=True) restores stderr logging.
    def log_message(self, format, *args):  # noqa: A002 - BaseHTTPRequestHandler API
        if self.server.app.verbose:
            super().log_message(format, *args)

    # ------------------------------------------------------------------
    def _reply(self, status: int, payload: Dict, retry_after: Optional[float] = None):
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            # Retry-After is delta-seconds; round up so clients never retry
            # before the hinted instant.
            self.send_header("Retry-After", str(max(1, int(np.ceil(retry_after)))))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> Dict:
        length = self.headers.get("Content-Length")
        if length is None:
            raise _HTTPError(411, "Content-Length required")
        try:
            length = int(length)
        except ValueError:
            raise _HTTPError(400, "invalid Content-Length") from None
        if length > MAX_BODY_BYTES:
            raise _HTTPError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise _HTTPError(400, f"invalid JSON body: {exc}") from None
        if not isinstance(body, dict):
            raise _HTTPError(400, "request body must be a JSON object")
        return body

    def _dispatch(self, method: str) -> None:
        app = self.server.app
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            route = app.routes.get((method, path))
            if route is None:
                raise _HTTPError(404, f"no such endpoint: {method} {path}")
            body = self._read_json() if method == "POST" else {}
            status, payload = route(body)
            self._reply(status, payload)
        except _HTTPError as exc:
            self._reply(
                exc.status, {"error": str(exc), "status": exc.status}, exc.retry_after
            )
        except Exception as exc:  # noqa: BLE001 - mapped to an HTTP status
            mapped = _map_exception(exc)
            self._reply(
                mapped.status,
                {"error": str(mapped), "status": mapped.status},
                mapped.retry_after,
            )

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        self._dispatch("POST")


# ----------------------------------------------------------------------
# The serving front-end
# ----------------------------------------------------------------------
class FairNNServer:
    """HTTP/JSON front-end serving one :class:`~repro.api.FairNN` facade.

    Parameters
    ----------
    nn:
        A built facade (``fit`` or ``serve`` already called).  Serving
        facades support the mutation endpoint; static ones answer queries
        only.
    host, port:
        Bind address; ``port=0`` (the default) picks an ephemeral port,
        exposed afterwards as :attr:`port` / :attr:`url`.
    capacity:
        The :class:`~repro.server.capacity.CapacityModel` guarding
        admission.  Defaults to an unlimited model (observability without
        enforcement).
    probe_count:
        Probe-batch size for swap verification.
    snapshot_root:
        When set, ``POST /v1/admin/swap`` only accepts snapshot directories
        inside this root (the admin surface unpickles snapshot files, so
        deployments pin where those may come from).
    verbose:
        Re-enable the default ``http.server`` request logging.

    Usage::

        nn = FairNN.from_spec(spec).serve(dataset)
        with FairNNServer(nn, capacity=CapacityModel(slot_capacity=10_000)) as server:
            print(server.url)      # e.g. http://127.0.0.1:43215
            server.serve_forever() # or .start() for a background thread
    """

    def __init__(
        self,
        nn: FairNN,
        host: str = "127.0.0.1",
        port: int = 0,
        capacity: Optional[CapacityModel] = None,
        probe_count: int = 8,
        snapshot_root: Optional[str] = None,
        verbose: bool = False,
    ):
        if not nn.engines:
            raise NotFittedError("FairNNServer requires a built facade (fit/serve first)")
        self.handle = ServingHandle(nn)
        self.capacity = capacity if capacity is not None else CapacityModel()
        self.swapper = SnapshotSwapper(self.handle, probe_count=probe_count)
        self.snapshot_root = (
            None if snapshot_root is None else pathlib.Path(snapshot_root).resolve()
        )
        self.verbose = bool(verbose)
        self.routes = {
            ("GET", "/healthz"): self._handle_healthz,
            ("GET", "/v1/stats"): self._handle_stats,
            ("GET", "/v1/capacity"): self._handle_capacity,
            ("GET", "/v1/admin/swap"): self._handle_swap_status,
            ("POST", "/v1/sample"): self._handle_sample,
            ("POST", "/v1/sample_batch"): self._handle_sample_batch,
            ("POST", "/v1/mutate"): self._handle_mutate,
            ("POST", "/v1/admin/swap"): self._handle_swap,
            ("POST", "/v1/admin/checkpoint"): self._handle_checkpoint,
        }
        self._httpd = _ServerCore((host, port), _Handler)
        self._httpd.app = self
        self._thread: Optional[threading.Thread] = None

    @classmethod
    def from_data_dir(
        cls, data_dir, fsync: Optional[str] = None, **kwargs
    ) -> "FairNNServer":
        """Boot a server by recovering the facade from a durable data directory.

        ``FairNN.recover(data_dir)`` rebuilds the exact pre-crash engine
        (newest valid checkpoint + WAL-suffix replay — including the
        idempotency dedup window), then the server fronts it as usual.
        Remaining keyword arguments go to the constructor.
        """
        return cls(FairNN.recover(data_dir, fsync=fsync), **kwargs)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (resolved after construction for ``port=0``)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def nn(self) -> FairNN:
        """The currently serving facade (changes across swaps)."""
        return self.handle.nn

    def start(self) -> "FairNNServer":
        """Serve on a background thread; returns immediately."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-http-server",
                daemon=True,
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`stop` (or interrupt)."""
        self._httpd.serve_forever()

    def stop(self) -> None:
        """Stop accepting requests and release the listening socket."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "FairNNServer":
        return self.start()

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Read-only endpoints (never queued: health checks and operators must
    # see the server even when the work queue is saturated)
    # ------------------------------------------------------------------
    def _handle_healthz(self, body: Dict) -> Tuple[int, Dict]:
        with self.handle.acquire() as nn:
            import repro

            return 200, {
                "status": "ok",
                "serving": nn.is_serving,
                "generation": self.handle.generation.number,
                "live_points": int(nn.num_live_points),
                "point_kind": point_kind(nn),
                "samplers": nn.sampler_names,
                "primary": nn.primary,
                "sharded": nn.is_sharded,
                "n_shards": nn.n_shards,
                "durable": nn.wal is not None,
                "version": repro.__version__,
            }

    def _handle_stats(self, body: Dict) -> Tuple[int, Dict]:
        with self.handle.acquire() as nn:
            return 200, {
                "generation": self.handle.generation.number,
                "samplers": {
                    name: engine.stats_dict() for name, engine in nn.engines.items()
                },
            }

    def _handle_capacity(self, body: Dict) -> Tuple[int, Dict]:
        with self.handle.acquire() as nn:
            return 200, self.capacity.snapshot(nn.capacity())

    def _handle_swap_status(self, body: Dict) -> Tuple[int, Dict]:
        report = self.swapper.last_report
        if report is None:
            return 200, {"status": "idle"}
        return 200, report

    # ------------------------------------------------------------------
    # Work endpoints (queued, quota'd)
    # ------------------------------------------------------------------
    def _requests_from(self, body: Dict, queries: List, kind: str) -> List[QueryRequest]:
        k = body.get("k", 1)
        replacement = body.get("replacement", True)
        exclude = body.get("exclude_index")
        if not isinstance(k, int) or isinstance(k, bool):
            raise InvalidParameterError(f"k must be an integer, got {k!r}")
        return [
            QueryRequest(
                query=decode_point(query, kind),
                k=k,
                replacement=bool(replacement),
                exclude_index=None if exclude is None else int(exclude),
            )
            for query in queries
        ]

    def _handle_sample(self, body: Dict) -> Tuple[int, Dict]:
        if "query" not in body:
            raise InvalidParameterError('POST /v1/sample requires a "query" field')
        self.capacity.enter_request()
        try:
            with self.handle.acquire() as nn:
                sampler = self._resolve_sampler(nn, body)
                self.capacity.admit_queries(sampler, 1)
                kind = point_kind(nn)
                requests = self._requests_from(body, [body["query"]], kind)
                response = nn.run(requests, sampler=sampler)[0]
                return 200, response.to_dict()
        finally:
            self.capacity.exit_request()

    def _handle_sample_batch(self, body: Dict) -> Tuple[int, Dict]:
        queries = body.get("queries")
        if not isinstance(queries, list) or not queries:
            raise InvalidParameterError(
                'POST /v1/sample_batch requires a non-empty "queries" array'
            )
        self.capacity.enter_request()
        try:
            with self.handle.acquire() as nn:
                sampler = self._resolve_sampler(nn, body)
                self.capacity.admit_queries(sampler, len(queries))
                kind = point_kind(nn)
                requests = self._requests_from(body, queries, kind)
                responses = nn.run(requests, sampler=sampler)
                return 200, {
                    "sampler": sampler,
                    "count": len(responses),
                    "results": [response.to_dict() for response in responses],
                }
        finally:
            self.capacity.exit_request()

    def _handle_mutate(self, body: Dict) -> Tuple[int, Dict]:
        op = body.get("op")
        if op not in ("insert", "delete"):
            raise InvalidParameterError(
                f'POST /v1/mutate requires "op" of "insert" or "delete", got {op!r}'
            )
        idempotency_key = body.get("idempotency_key")
        if idempotency_key is not None and (
            not isinstance(idempotency_key, str) or not idempotency_key
        ):
            raise InvalidParameterError(
                '"idempotency_key" must be a non-empty string when present'
            )
        self.capacity.enter_request()
        try:
            with self.handle.acquire() as nn:
                if op == "insert":
                    points = body.get("points")
                    if not isinstance(points, list) or not points:
                        raise InvalidParameterError(
                            'insert requires a non-empty "points" array'
                        )
                    self.capacity.admit_insert(len(points), nn.capacity())
                    kind = point_kind(nn)
                    decoded = [decode_point(point, kind) for point in points]
                    indices = nn.insert_many(decoded, idempotency_key=idempotency_key)
                    return 200, {
                        "op": "insert",
                        "indices": [int(i) for i in indices],
                        "live_points": int(nn.num_live_points),
                    }
                index = body.get("index")
                if not isinstance(index, int) or isinstance(index, bool):
                    raise InvalidParameterError('delete requires an integer "index"')
                nn.delete(index, idempotency_key=idempotency_key)
                return 200, {
                    "op": "delete",
                    "index": index,
                    "live_points": int(nn.num_live_points),
                }
        finally:
            self.capacity.exit_request()

    # ------------------------------------------------------------------
    # Admin
    # ------------------------------------------------------------------
    def _handle_swap(self, body: Dict) -> Tuple[int, Dict]:
        snapshot = body.get("snapshot")
        if not isinstance(snapshot, str) or not snapshot:
            raise InvalidParameterError(
                'POST /v1/admin/swap requires a "snapshot" directory path'
            )
        directory = pathlib.Path(snapshot).resolve()
        if self.snapshot_root is not None and not directory.is_relative_to(
            self.snapshot_root
        ):
            raise InvalidParameterError(
                f"snapshot path must live under {self.snapshot_root}"
            )
        probes = body.get("probes")
        if probes is not None:
            with self.handle.acquire() as nn:
                kind = point_kind(nn)
            probes = [decode_point(point, kind) for point in probes]
        verify = bool(body.get("verify", True))
        wait = bool(body.get("wait", True))
        report = self.swapper.swap(directory, probes=probes, verify=verify, wait=wait)
        if not wait:
            return 202, report
        if report["status"] != "completed":
            return 409, report
        return 200, report

    def _handle_checkpoint(self, body: Dict) -> Tuple[int, Dict]:
        """Write a durable checkpoint (trusted-operator surface, like swap).

        Requires the serving facade to be durable (booted via
        ``serve(data_dir=...)`` or :meth:`from_data_dir`); 400 otherwise.
        """
        with self.handle.acquire() as nn:
            path = nn.checkpoint()
            return 200, {
                "status": "completed",
                "checkpoint": str(path),
                "durability": nn.durability(),
            }

    # ------------------------------------------------------------------
    def _resolve_sampler(self, nn: FairNN, body: Dict) -> str:
        sampler = body.get("sampler")
        if sampler is None:
            return nn.primary
        if sampler not in nn.sampler_names:
            raise InvalidParameterError(
                f"unknown sampler {sampler!r}; available: {sorted(nn.sampler_names)}"
            )
        return str(sampler)

"""A thin stdlib HTTP client for :class:`~repro.server.app.FairNNServer`.

Built on ``urllib.request`` so tests, examples, and benchmarks can exercise
the serving surface without third-party dependencies.  Error responses are
raised as :class:`ServerHTTPError`, carrying the HTTP status, the server's
error message, and the parsed ``Retry-After`` hint (for 429 backpressure).

Usage::

    with FairNNServer(nn) as server:
        client = FairNNClient(server.url)
        client.healthz()["status"]               # "ok"
        client.sample([0.1, 0.2])["index"]
        client.sample_batch([[0.1, 0.2], [0.3, 0.4]], k=3, replacement=False)
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Sequence

from repro.server.app import encode_point
from repro.types import Point

__all__ = ["FairNNClient", "ServerHTTPError"]


class ServerHTTPError(Exception):
    """A non-2xx response from the server, with its parsed JSON payload."""

    def __init__(
        self,
        status: int,
        message: str,
        retry_after: Optional[float] = None,
        payload: Optional[Dict] = None,
    ):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        self.retry_after = retry_after
        #: The full response body (e.g. the swap report of a failed swap).
        self.payload = payload if payload is not None else {}


class FairNNClient:
    """Client for one server base URL (e.g. ``http://127.0.0.1:8420``)."""

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)

    # ------------------------------------------------------------------
    def _request(self, method: str, path: str, body: Optional[Dict] = None) -> Dict:
        url = f"{self.base_url}{path}"
        data = None if body is None else json.dumps(body).encode("utf-8")
        request = urllib.request.Request(
            url,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"} if data is not None else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            payload = None
            try:
                payload = json.loads(raw)
                message = payload.get("error") or raw.decode("utf-8", "replace")
            except (json.JSONDecodeError, UnicodeDecodeError):
                message = raw.decode("utf-8", "replace")
            retry_after = exc.headers.get("Retry-After")
            raise ServerHTTPError(
                exc.code,
                message,
                retry_after=None if retry_after is None else float(retry_after),
                payload=payload if isinstance(payload, dict) else None,
            ) from None

    @staticmethod
    def _encode(points: Sequence[Point]) -> List[List]:
        return [encode_point(point) for point in points]

    # ------------------------------------------------------------------
    # Read-only
    # ------------------------------------------------------------------
    def healthz(self) -> Dict:
        return self._request("GET", "/healthz")

    def stats(self) -> Dict:
        return self._request("GET", "/v1/stats")

    def capacity(self) -> Dict:
        return self._request("GET", "/v1/capacity")

    def swap_status(self) -> Dict:
        return self._request("GET", "/v1/admin/swap")

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample(
        self,
        query: Point,
        sampler: Optional[str] = None,
        k: int = 1,
        replacement: bool = True,
        exclude_index: Optional[int] = None,
    ) -> Dict:
        body: Dict = {"query": encode_point(query), "k": k, "replacement": replacement}
        if sampler is not None:
            body["sampler"] = sampler
        if exclude_index is not None:
            body["exclude_index"] = exclude_index
        return self._request("POST", "/v1/sample", body)

    def sample_batch(
        self,
        queries: Sequence[Point],
        sampler: Optional[str] = None,
        k: int = 1,
        replacement: bool = True,
    ) -> Dict:
        body: Dict = {
            "queries": self._encode(queries),
            "k": k,
            "replacement": replacement,
        }
        if sampler is not None:
            body["sampler"] = sampler
        return self._request("POST", "/v1/sample_batch", body)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, points: Sequence[Point]) -> Dict:
        return self._request(
            "POST", "/v1/mutate", {"op": "insert", "points": self._encode(points)}
        )

    def delete(self, index: int) -> Dict:
        return self._request("POST", "/v1/mutate", {"op": "delete", "index": int(index)})

    # ------------------------------------------------------------------
    # Admin
    # ------------------------------------------------------------------
    def swap(
        self,
        snapshot: str,
        probes: Optional[Sequence[Point]] = None,
        verify: bool = True,
        wait: bool = True,
    ) -> Dict:
        body: Dict = {"snapshot": str(snapshot), "verify": verify, "wait": wait}
        if probes is not None:
            body["probes"] = self._encode(probes)
        return self._request("POST", "/v1/admin/swap", body)

"""A thin stdlib HTTP client for :class:`~repro.server.app.FairNNServer`.

Built on ``urllib.request`` so tests, examples, and benchmarks can exercise
the serving surface without third-party dependencies.  Error responses are
raised as :class:`ServerHTTPError`, carrying the HTTP status, the server's
error message, and the parsed ``Retry-After`` hint (for 429 backpressure).

Timeouts and retries
--------------------

Every request carries an explicit per-attempt socket timeout (``timeout``,
default **30 seconds**) — the client never hangs indefinitely on a stuck
server.  A socket-level timeout surfaces as the typed
:class:`~repro.exceptions.ServerTimeoutError` (which also subclasses the
builtin :class:`TimeoutError`).

Transient failures are retried with exponential backoff and full jitter:

* HTTP 429 (admission rejected) and 503 (draining / swap in flight) are
  retried for **every** request, sleeping at least the server's
  ``Retry-After`` hint when one is present.
* Network errors and socket timeouts are retried for idempotent requests:
  all GETs, and mutations (each logical ``insert``/``delete`` call
  auto-generates one idempotency key that is reused across its retries, so
  a retried mutation that already landed is deduplicated server-side
  rather than applied twice).  ``sample``/``sample_batch`` POSTs are *not*
  retried on network errors — a lost response may mean the server already
  drew from its sampler RNG, and silently re-drawing would break
  reproducibility.  Callers who don't care can simply call again.

An optional overall ``deadline`` (seconds, across all attempts of one
logical call) bounds total latency; when it expires mid-backoff the client
raises :class:`~repro.exceptions.ServerTimeoutError` instead of sleeping.

Usage::

    with FairNNServer(nn) as server:
        client = FairNNClient(server.url, timeout=5.0, deadline=20.0)
        client.healthz()["status"]               # "ok"
        client.sample([0.1, 0.2])["index"]
        client.sample_batch([[0.1, 0.2], [0.3, 0.4]], k=3, replacement=False)
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
import uuid
from typing import Callable, Dict, List, Optional, Sequence

from repro.exceptions import ServerTimeoutError
from repro.server.app import encode_point
from repro.types import Point

__all__ = ["FairNNClient", "ServerHTTPError"]

#: HTTP statuses that signal a transient server condition worth retrying.
_RETRY_STATUSES = frozenset({429, 503})


class ServerHTTPError(Exception):
    """A non-2xx response from the server, with its parsed JSON payload."""

    def __init__(
        self,
        status: int,
        message: str,
        retry_after: Optional[float] = None,
        payload: Optional[Dict] = None,
    ):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        self.retry_after = retry_after
        #: The full response body (e.g. the swap report of a failed swap).
        self.payload = payload if payload is not None else {}


def _is_timeout(error: BaseException) -> bool:
    """Whether ``error`` is a socket timeout (possibly wrapped by urllib)."""
    if isinstance(error, TimeoutError):
        return True
    if isinstance(error, urllib.error.URLError):
        return isinstance(error.reason, TimeoutError)
    return False


class FairNNClient:
    """Client for one server base URL (e.g. ``http://127.0.0.1:8420``).

    :param base_url: server root, e.g. ``http://127.0.0.1:8420``.
    :param timeout: per-attempt socket timeout in seconds (default 30.0).
        Applies to connect and to each blocking read.
    :param deadline: optional overall budget in seconds for one logical
        call, across all of its retry attempts and backoff sleeps.  ``None``
        (the default) bounds each attempt only by ``timeout``.
    :param retries: how many *additional* attempts to make after the first
        one fails transiently (so ``retries=2`` means up to 3 attempts).
    :param backoff: base backoff in seconds; attempt ``n`` sleeps a uniform
        random amount in ``[0, backoff * 2**n]`` (full jitter), floored by
        the server's ``Retry-After`` hint and capped at ``backoff_cap``.
    :param sleep: injectable sleep function (tests pass a recorder).
    :param rng: injectable :class:`random.Random` for jitter (tests pass a
        seeded instance).
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        deadline: Optional[float] = None,
        retries: int = 2,
        backoff: float = 0.2,
        backoff_cap: float = 5.0,
        sleep: Callable[[float], None] = time.sleep,
        rng: Optional[random.Random] = None,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)
        self.deadline = None if deadline is None else float(deadline)
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.backoff_cap = float(backoff_cap)
        self._sleep = sleep
        self._rng = rng if rng is not None else random.Random()

    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict] = None,
        retry_network: Optional[bool] = None,
    ) -> Dict:
        """Issue one logical request, retrying transient failures.

        ``retry_network`` controls whether network errors / socket timeouts
        are retried (HTTP 429/503 always are).  It defaults to ``True`` for
        GETs and ``False`` for POSTs; mutation methods opt in explicitly
        because their idempotency keys make blind retries safe.
        """
        if retry_network is None:
            retry_network = method == "GET"
        deadline_at = (
            None if self.deadline is None else time.monotonic() + self.deadline
        )
        attempt = 0
        while True:
            attempt_timeout = self.timeout
            if deadline_at is not None:
                remaining = deadline_at - time.monotonic()
                if remaining <= 0:
                    raise ServerTimeoutError(
                        f"deadline of {self.deadline}s exhausted before "
                        f"attempt {attempt + 1} of {method} {path}"
                    )
                attempt_timeout = min(attempt_timeout, remaining)
            retry_after: Optional[float] = None
            try:
                return self._request_once(method, path, body, attempt_timeout)
            except ServerHTTPError as exc:
                if exc.status not in _RETRY_STATUSES or attempt >= self.retries:
                    raise
                retry_after = exc.retry_after
            except (urllib.error.URLError, TimeoutError) as exc:
                if _is_timeout(exc):
                    if not retry_network or attempt >= self.retries:
                        raise ServerTimeoutError(
                            f"{method} {path} timed out after "
                            f"{attempt_timeout:.1f}s (attempt {attempt + 1})"
                        ) from exc
                elif not retry_network or attempt >= self.retries:
                    raise
            # Full jitter: uniform in [0, backoff * 2**attempt], floored by
            # the server's Retry-After hint, capped, and never past the
            # deadline.
            delay = self._rng.uniform(0.0, self.backoff * (2**attempt))
            if retry_after is not None:
                delay = max(delay, retry_after)
            delay = min(delay, self.backoff_cap)
            if deadline_at is not None:
                remaining = deadline_at - time.monotonic()
                if remaining <= delay:
                    raise ServerTimeoutError(
                        f"deadline of {self.deadline}s exhausted while backing "
                        f"off before retrying {method} {path}"
                    )
            if delay > 0:
                self._sleep(delay)
            attempt += 1

    def _request_once(
        self, method: str, path: str, body: Optional[Dict], timeout: float
    ) -> Dict:
        url = f"{self.base_url}{path}"
        data = None if body is None else json.dumps(body).encode("utf-8")
        request = urllib.request.Request(
            url,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"} if data is not None else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            payload = None
            try:
                payload = json.loads(raw)
                message = payload.get("error") or raw.decode("utf-8", "replace")
            except (json.JSONDecodeError, UnicodeDecodeError):
                message = raw.decode("utf-8", "replace")
            retry_after = exc.headers.get("Retry-After")
            raise ServerHTTPError(
                exc.code,
                message,
                retry_after=None if retry_after is None else float(retry_after),
                payload=payload if isinstance(payload, dict) else None,
            ) from None

    @staticmethod
    def _encode(points: Sequence[Point]) -> List[List]:
        return [encode_point(point) for point in points]

    # ------------------------------------------------------------------
    # Read-only
    # ------------------------------------------------------------------
    def healthz(self) -> Dict:
        return self._request("GET", "/healthz")

    def stats(self) -> Dict:
        return self._request("GET", "/v1/stats")

    def capacity(self) -> Dict:
        return self._request("GET", "/v1/capacity")

    def swap_status(self) -> Dict:
        return self._request("GET", "/v1/admin/swap")

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample(
        self,
        query: Point,
        sampler: Optional[str] = None,
        k: int = 1,
        replacement: bool = True,
        exclude_index: Optional[int] = None,
    ) -> Dict:
        body: Dict = {"query": encode_point(query), "k": k, "replacement": replacement}
        if sampler is not None:
            body["sampler"] = sampler
        if exclude_index is not None:
            body["exclude_index"] = exclude_index
        return self._request("POST", "/v1/sample", body)

    def sample_batch(
        self,
        queries: Sequence[Point],
        sampler: Optional[str] = None,
        k: int = 1,
        replacement: bool = True,
    ) -> Dict:
        body: Dict = {
            "queries": self._encode(queries),
            "k": k,
            "replacement": replacement,
        }
        if sampler is not None:
            body["sampler"] = sampler
        return self._request("POST", "/v1/sample_batch", body)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(
        self, points: Sequence[Point], idempotency_key: Optional[str] = None
    ) -> Dict:
        """Insert ``points``; safe to retry thanks to the idempotency key.

        A fresh ``uuid4`` key is generated when none is given, and the same
        key is reused across this call's internal retries — a retried insert
        whose first attempt actually landed returns the original slot
        indices instead of inserting twice.
        """
        key = idempotency_key if idempotency_key is not None else str(uuid.uuid4())
        body = {"op": "insert", "points": self._encode(points), "idempotency_key": key}
        return self._request("POST", "/v1/mutate", body, retry_network=True)

    def delete(self, index: int, idempotency_key: Optional[str] = None) -> Dict:
        """Delete slot ``index``; safe to retry thanks to the idempotency key."""
        key = idempotency_key if idempotency_key is not None else str(uuid.uuid4())
        body = {"op": "delete", "index": int(index), "idempotency_key": key}
        return self._request("POST", "/v1/mutate", body, retry_network=True)

    # ------------------------------------------------------------------
    # Admin
    # ------------------------------------------------------------------
    def swap(
        self,
        snapshot: str,
        probes: Optional[Sequence[Point]] = None,
        verify: bool = True,
        wait: bool = True,
    ) -> Dict:
        body: Dict = {"snapshot": str(snapshot), "verify": verify, "wait": wait}
        if probes is not None:
            body["probes"] = self._encode(probes)
        return self._request("POST", "/v1/admin/swap", body)

    def checkpoint(self) -> Dict:
        """Ask a durable server to write a checkpoint and truncate its WAL."""
        return self._request("POST", "/v1/admin/checkpoint", {})

"""Stdlib HTTP block server: the remote side of the ``remote`` store tier.

Serves the narrow block protocol that
:class:`~repro.store.blocks.HTTPBlockClient` speaks, from either an
in-memory mapping of arrays or a format-5 snapshot directory (the same two
sources :class:`~repro.store.blocks.LocalBlockClient` accepts — the server
simply fronts a ``LocalBlockClient`` over HTTP).

Endpoints
---------
``GET /v1/blocks/meta``
    JSON ``{"arrays": {name: {"dtype", "shape"}}}`` — dtype strings and
    shapes of every served array.
``GET /v1/blocks/fetch?name=<array>&blocks=<csv ids>&block_size=<rows>``
    ``application/octet-stream``: the requested blocks' raw bytes
    concatenated in request order (a block is ``block_size`` consecutive
    axis-0 entries; the last block of an array is short).

Unknown arrays and out-of-range blocks answer 404, malformed parameters
400 — the client maps both onto :class:`~repro.exceptions.BlockFetchError`.
Like the rest of :mod:`repro.server` this is stdlib-only
(``http.server.ThreadingHTTPServer``), binds an ephemeral port by default,
and serves each request on its own thread, so one server can feed many
:class:`~repro.store.remote.RemoteDenseStore` /
:class:`~repro.store.remote.RemoteSetStore` clients concurrently.

Usage::

    with BlockServer.from_snapshot(snapshot_dir) as server:
        nn = FairNN.load(snapshot_dir, store={"backend": "remote",
                                              "endpoint": server.url})
        ...
"""

from __future__ import annotations

import json
import threading
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple

from repro.exceptions import BlockFetchError
from repro.store.blocks import LocalBlockClient

__all__ = ["BlockServer"]


class _BlockServerCore(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying a reference to the owning block server."""

    daemon_threads = True
    app: "BlockServer"


class _BlockHandler(BaseHTTPRequestHandler):
    """Routes the two block endpoints; everything else is 404."""

    server: _BlockServerCore

    def log_message(self, format, *args):  # noqa: A002 - BaseHTTPRequestHandler API
        if self.server.app.verbose:
            super().log_message(format, *args)

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        parsed = urllib.parse.urlsplit(self.path)
        if parsed.path == "/v1/blocks/meta":
            self._send_json(200, self.server.app.meta())
            return
        if parsed.path == "/v1/blocks/fetch":
            status, payload = self.server.app.fetch_from_query(parsed.query)
            if status == 200:
                self._send_bytes(payload)
            else:
                self._send_json(status, {"error": payload})
            return
        self._send_json(404, {"error": f"unknown path {parsed.path}"})

    def _send_json(self, status: int, body: Dict) -> None:
        data = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _send_bytes(self, payload: bytes) -> None:
        self.send_response(200)
        self.send_header("Content-Type", "application/octet-stream")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)


class BlockServer:
    """HTTP front-end over a :class:`~repro.store.blocks.LocalBlockClient`.

    Parameters
    ----------
    source:
        A mapping ``{name: ndarray}`` of arrays to serve, or a format-5
        snapshot directory (whose ``arrays/*.npy`` dataset payloads are
        memory-mapped, so the server itself stays out-of-core).
    host, port:
        Bind address; ``port=0`` (the default) picks an ephemeral port,
        exposed afterwards as :attr:`port` / :attr:`url`.
    verbose:
        Re-enable the default ``http.server`` request logging.
    """

    def __init__(self, source, host: str = "127.0.0.1", port: int = 0, verbose: bool = False):
        self._client = LocalBlockClient(source)
        self.verbose = bool(verbose)
        self._httpd = _BlockServerCore((host, port), _BlockHandler)
        self._httpd.app = self
        self._thread: Optional[threading.Thread] = None

    @classmethod
    def from_snapshot(cls, directory, **kwargs) -> "BlockServer":
        """Serve the dataset arrays of a format-5 snapshot directory."""
        return cls(directory, **kwargs)

    # ------------------------------------------------------------------
    # Lifecycle (mirrors FairNNServer)
    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (resolved after construction for ``port=0``)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "BlockServer":
        """Serve on a background thread; returns immediately."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-block-server",
                daemon=True,
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`stop` (or interrupt)."""
        self._httpd.serve_forever()

    def stop(self) -> None:
        """Stop accepting requests and release the listening socket."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._client.close()

    def __enter__(self) -> "BlockServer":
        return self.start()

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Request handling (called from handler threads)
    # ------------------------------------------------------------------
    def meta(self) -> Dict:
        """The JSON body of ``GET /v1/blocks/meta``."""
        return self._client.meta()

    def fetch_from_query(self, query: str) -> Tuple[int, object]:
        """Resolve a ``/v1/blocks/fetch`` query string.

        Returns ``(200, payload_bytes)`` on success, ``(400, message)`` for
        malformed parameters, and ``(404, message)`` for unknown arrays or
        out-of-range blocks.
        """
        params = urllib.parse.parse_qs(query)
        name = params.get("name", [None])[0]
        blocks_csv = params.get("blocks", [None])[0]
        block_size_raw = params.get("block_size", [None])[0]
        if not name or not blocks_csv or not block_size_raw:
            return 400, "fetch requires name, blocks and block_size parameters"
        try:
            block_ids: List[int] = [int(b) for b in blocks_csv.split(",")]
            block_size = int(block_size_raw)
        except ValueError:
            return 400, "blocks must be a csv of ints and block_size an int"
        if block_size < 1 or not block_ids or any(b < 0 for b in block_ids):
            return 400, "block_size must be >= 1 and block ids non-negative"
        try:
            return 200, self._client.fetch(name, block_ids, block_size)
        except BlockFetchError as exc:
            return 404, str(exc)

"""Angular distance and cosine similarity."""

from __future__ import annotations

import numpy as np

from repro.distances.base import Measure, MeasureKind
from repro.exceptions import DimensionMismatchError
from repro.registry import register_distance


def _cosine(a: np.ndarray, b: np.ndarray) -> float:
    # einsum recipes keep the scalar path bitwise-aligned with the batch
    # kernels (BLAS np.dot / np.linalg.norm accumulate in a different order).
    denom = float(np.sqrt(np.einsum("i,i->", a, a))) * float(np.sqrt(np.einsum("i,i->", b, b)))
    if denom == 0.0:
        return 0.0
    return float(np.clip(np.einsum("i,i->", a, b) / denom, -1.0, 1.0))


@register_distance("cosine")
class CosineSimilarity(Measure):
    """Cosine of the angle between two vectors (a similarity in [-1, 1])."""

    kind = MeasureKind.SIMILARITY
    name = "cosine"

    def value(self, a, b) -> float:
        a = np.asarray(a, dtype=float)
        b = np.asarray(b, dtype=float)
        if a.shape != b.shape:
            raise DimensionMismatchError(
                f"shape mismatch: {a.shape} vs {b.shape} for cosine similarity"
            )
        return _cosine(a, b)

    def values_to_query(self, dataset, query) -> np.ndarray:
        data = np.asarray(dataset, dtype=float)
        query = np.asarray(query, dtype=float)
        if data.ndim != 2 or data.shape[1] != query.shape[0]:
            raise DimensionMismatchError(
                f"incompatible shapes {data.shape} and {query.shape} for cosine similarity"
            )
        row_norms = np.sqrt(np.einsum("ij,ij->i", data, data))
        query_norm = float(np.sqrt(np.einsum("i,i->", query, query)))
        dots = np.einsum("ij,j->i", data, query)
        return _safe_cosine(dots, row_norms * query_norm)

    def values_at(self, store, indices, query) -> np.ndarray:
        if getattr(store, "kind", None) != "dense":
            return super().values_at(store, indices, query)
        query = np.asarray(query, dtype=float)
        if store.dim != query.shape[0]:
            raise DimensionMismatchError(
                f"query dimension {query.shape[0]} does not match store dimension {store.dim}"
            )
        rows = store.gather(indices)
        query_norm = float(np.sqrt(np.einsum("i,i->", query, query)))
        dots = np.einsum("ij,j->i", rows, query)
        return _safe_cosine(dots, store.row_norms[indices] * query_norm)


def _safe_cosine(dots: np.ndarray, denoms: np.ndarray) -> np.ndarray:
    """Clipped cosine with the scalar convention that a zero norm means 0.0."""
    with np.errstate(invalid="ignore", divide="ignore"):
        values = np.where(denoms == 0.0, 0.0, dots / np.where(denoms == 0.0, 1.0, denoms))
    return np.clip(values, -1.0, 1.0)


@register_distance("angular")
class AngularDistance(Measure):
    """Angle between two vectors in radians (a distance in [0, pi]).

    This is the distance for which the SimHash / random-hyperplane family has
    collision probability ``1 - theta / pi``.
    """

    kind = MeasureKind.DISTANCE
    name = "angular"

    def value(self, a, b) -> float:
        return float(np.arccos(CosineSimilarity().value(a, b)))

    def values_to_query(self, dataset, query) -> np.ndarray:
        return np.arccos(CosineSimilarity().values_to_query(dataset, query))

    def values_at(self, store, indices, query) -> np.ndarray:
        return np.arccos(CosineSimilarity().values_at(store, indices, query))

"""Angular distance and cosine similarity."""

from __future__ import annotations

import numpy as np

from repro.distances.base import Measure, MeasureKind
from repro.exceptions import DimensionMismatchError


def _cosine(a: np.ndarray, b: np.ndarray) -> float:
    denom = np.linalg.norm(a) * np.linalg.norm(b)
    if denom == 0.0:
        return 0.0
    return float(np.clip(np.dot(a, b) / denom, -1.0, 1.0))


class CosineSimilarity(Measure):
    """Cosine of the angle between two vectors (a similarity in [-1, 1])."""

    kind = MeasureKind.SIMILARITY
    name = "cosine"

    def value(self, a, b) -> float:
        a = np.asarray(a, dtype=float)
        b = np.asarray(b, dtype=float)
        if a.shape != b.shape:
            raise DimensionMismatchError(
                f"shape mismatch: {a.shape} vs {b.shape} for cosine similarity"
            )
        return _cosine(a, b)

    def values_to_query(self, dataset, query) -> np.ndarray:
        data = np.asarray(dataset, dtype=float)
        query = np.asarray(query, dtype=float)
        if data.ndim != 2 or data.shape[1] != query.shape[0]:
            raise DimensionMismatchError(
                f"incompatible shapes {data.shape} and {query.shape} for cosine similarity"
            )
        norms = np.linalg.norm(data, axis=1) * np.linalg.norm(query)
        dots = data @ query
        with np.errstate(invalid="ignore", divide="ignore"):
            values = np.where(norms == 0.0, 0.0, dots / np.where(norms == 0.0, 1.0, norms))
        return np.clip(values, -1.0, 1.0)


class AngularDistance(Measure):
    """Angle between two vectors in radians (a distance in [0, pi]).

    This is the distance for which the SimHash / random-hyperplane family has
    collision probability ``1 - theta / pi``.
    """

    kind = MeasureKind.DISTANCE
    name = "angular"

    def value(self, a, b) -> float:
        return float(np.arccos(CosineSimilarity().value(a, b)))

    def values_to_query(self, dataset, query) -> np.ndarray:
        return np.arccos(CosineSimilarity().values_to_query(dataset, query))

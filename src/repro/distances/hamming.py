"""Hamming distance over binary (0/1) vectors."""

from __future__ import annotations

import numpy as np

from repro.distances.base import Measure, MeasureKind
from repro.exceptions import DimensionMismatchError
from repro.registry import register_distance


@register_distance("hamming")
class HammingDistance(Measure):
    """Number of coordinates in which two binary vectors differ."""

    kind = MeasureKind.DISTANCE
    name = "hamming"

    def value(self, a, b) -> float:
        a = np.asarray(a)
        b = np.asarray(b)
        if a.shape != b.shape:
            raise DimensionMismatchError(
                f"shape mismatch: {a.shape} vs {b.shape} for Hamming distance"
            )
        return float(np.count_nonzero(a != b))

    def values_to_query(self, dataset, query) -> np.ndarray:
        data = np.asarray(dataset)
        query = np.asarray(query)
        if data.ndim != 2:
            raise DimensionMismatchError(
                f"expected a 2-D dataset, got array of shape {data.shape}"
            )
        if data.shape[1] != query.shape[0]:
            raise DimensionMismatchError(
                f"query dimension {query.shape[0]} does not match dataset dimension {data.shape[1]}"
            )
        return np.count_nonzero(data != query[np.newaxis, :], axis=1).astype(float)

    def values_at(self, store, indices, query) -> np.ndarray:
        # Counts are exact integers, so the float64 store rows compare
        # identically to the original (integer/bool) representation.
        if getattr(store, "kind", None) != "dense":
            return super().values_at(store, indices, query)
        query = np.asarray(query)
        if store.dim != query.shape[0]:
            raise DimensionMismatchError(
                f"query dimension {query.shape[0]} does not match store dimension {store.dim}"
            )
        rows = store.gather(indices)
        return np.count_nonzero(rows != query[np.newaxis, :], axis=1).astype(float)

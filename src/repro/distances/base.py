"""Abstract base class for (dis)similarity measures.

The paper states results both for *distances* (smaller is closer, a point is
near when ``D(p, q) <= r``) and for *similarities* (larger is closer, a point
is near when ``S(p, q) >= r``).  :class:`Measure` unifies the two behind a
single ``is_near`` / ``within`` interface so the samplers never need to know
which convention the active measure uses.
"""

from __future__ import annotations

import abc
import enum
from typing import Iterable

import numpy as np

from repro.types import Dataset, Point


class MeasureKind(enum.Enum):
    """Orientation of a measure: distance (lower = closer) or similarity."""

    DISTANCE = "distance"
    SIMILARITY = "similarity"


class Measure(abc.ABC):
    """A (dis)similarity measure over a metric or similarity space.

    Concrete subclasses implement :meth:`value` for a single pair and
    :meth:`values_to_query` for a vectorized dataset-vs-query computation.
    """

    #: Whether the measure is a distance or a similarity.
    kind: MeasureKind = MeasureKind.DISTANCE

    #: Human readable name used in reports.
    name: str = "measure"

    @abc.abstractmethod
    def value(self, a: Point, b: Point) -> float:
        """Return the measure value between two points."""

    def values_to_query(self, dataset: Dataset, query: Point) -> np.ndarray:
        """Return the measure value between every dataset point and *query*.

        The default implementation loops over :meth:`value`; subclasses
        override it with a vectorized computation where possible.
        """
        return np.asarray([self.value(p, query) for p in _iter_points(dataset)], dtype=float)

    def values_at(self, store, indices: np.ndarray, query: Point) -> np.ndarray:
        """Batch kernel: measure values between the store rows *indices* and *query*.

        *store* is a :class:`~repro.store.base.DatasetStore` whose slot ``i``
        holds dataset point ``i``; *indices* is an integer array of slots to
        score.  This is the hot-path entry point of the vectorized
        candidate-evaluation pipeline: samplers score a whole candidate array
        with one call instead of one Python-level :meth:`value` call per pair.

        Subclasses override it with a columnar kernel for the store layouts
        they understand (dispatching on ``store.kind``) and are required to
        produce *bitwise* the same float64 values as :meth:`value` on the
        same pair — the scalar implementations share the kernel's ``einsum``
        recipes precisely so that the scalar fallback and the vectorized path
        are interchangeable.  The default implementation is that fallback:
        a loop over :meth:`value`.
        """
        return np.asarray(
            [self.value(store.get_point(int(i)), query) for i in indices], dtype=np.float64
        )

    # ------------------------------------------------------------------
    # Near / far predicates
    # ------------------------------------------------------------------
    def within(self, value: float, threshold: float) -> bool:
        """Return True when *value* means "at least as close as *threshold*"."""
        if self.kind is MeasureKind.DISTANCE:
            return value <= threshold
        return value >= threshold

    def within_mask(self, values: np.ndarray, threshold: float) -> np.ndarray:
        """Vectorized :meth:`within` over an array of measure values."""
        values = np.asarray(values, dtype=float)
        if self.kind is MeasureKind.DISTANCE:
            return values <= threshold
        return values >= threshold

    def is_near(self, a: Point, b: Point, threshold: float) -> bool:
        """Return True when the two points are near at the given threshold."""
        return self.within(self.value(a, b), threshold)

    def relax(self, threshold: float, c: float) -> float:
        """Return the relaxed ("far") threshold corresponding to factor *c*.

        For distances the paper uses ``c > 1`` and the far threshold is
        ``c * r``; for similarities ``c`` is in ``(0, 1)`` and the relaxed
        threshold is ``c * r`` as well (a *smaller* similarity).  In both
        conventions the relaxed threshold is simply the product, so this
        method exists mainly for readability at call sites.
        """
        return c * threshold

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}()"


def _iter_points(dataset: Dataset) -> Iterable[Point]:
    """Iterate the points of a dataset in index order.

    Sequences (including 2-D arrays, which iterate as row views) are yielded
    as-is — materializing ``list(dataset)`` here would copy the whole dataset
    on every call.
    """
    return dataset

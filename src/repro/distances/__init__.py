"""Distance and similarity measures plus brute-force ball queries.

These measures form the metric-space substrate used everywhere else: the fair
samplers need to decide whether a candidate returned by the LSH layer is
really an *r*-near neighbor, the experiments need exact ball counts
``b_S(q, r)``, and the fairness audit groups output frequencies by similarity
to the query.
"""

from repro.distances.base import Measure, MeasureKind
from repro.distances.euclidean import EuclideanDistance
from repro.distances.hamming import HammingDistance
from repro.distances.jaccard import JaccardSimilarity
from repro.distances.inner_product import InnerProductSimilarity
from repro.distances.angular import AngularDistance, CosineSimilarity
from repro.distances.ball import ball_indices, ball_size, neighborhood_sizes

__all__ = [
    "Measure",
    "MeasureKind",
    "EuclideanDistance",
    "HammingDistance",
    "JaccardSimilarity",
    "InnerProductSimilarity",
    "AngularDistance",
    "CosineSimilarity",
    "ball_indices",
    "ball_size",
    "neighborhood_sizes",
]

"""Jaccard similarity over set-valued data.

This is the measure used in the paper's experimental evaluation: users are
represented by the set of movies they rated (MovieLens) or their top artists
(Last.FM) and the similarity of two users X, Y is
``J(X, Y) = |X ∩ Y| / |X ∪ Y|``.
"""

from __future__ import annotations

import numpy as np

from repro.distances.base import Measure, MeasureKind
from repro.exceptions import UnsupportedDataTypeError
from repro.types import as_set_point


class JaccardSimilarity(Measure):
    """Jaccard similarity ``|a ∩ b| / |a ∪ b|`` between two sets."""

    kind = MeasureKind.SIMILARITY
    name = "jaccard"

    def value(self, a, b) -> float:
        a = _coerce(a)
        b = _coerce(b)
        if not a and not b:
            # Two empty sets are conventionally identical.
            return 1.0
        intersection = len(a & b)
        union = len(a) + len(b) - intersection
        return intersection / union

    def values_to_query(self, dataset, query) -> np.ndarray:
        query = _coerce(query)
        return np.asarray([self.value(p, query) for p in dataset], dtype=float)


def _coerce(point) -> frozenset:
    if isinstance(point, (set, frozenset)):
        return frozenset(point)
    if isinstance(point, np.ndarray) and point.ndim > 1:
        raise UnsupportedDataTypeError(
            "JaccardSimilarity expects set-valued points, got a multi-dimensional array"
        )
    try:
        return as_set_point(point)
    except TypeError as exc:  # non-iterable scalar
        raise UnsupportedDataTypeError(
            f"JaccardSimilarity expects set-valued points, got {type(point).__name__}"
        ) from exc

"""Jaccard similarity over set-valued data.

This is the measure used in the paper's experimental evaluation: users are
represented by the set of movies they rated (MovieLens) or their top artists
(Last.FM) and the similarity of two users X, Y is
``J(X, Y) = |X ∩ Y| / |X ∪ Y|``.
"""

from __future__ import annotations

import numpy as np

from repro.distances.base import Measure, MeasureKind
from repro.exceptions import UnsupportedDataTypeError
from repro.types import as_set_point
from repro.registry import register_distance


@register_distance("jaccard")
class JaccardSimilarity(Measure):
    """Jaccard similarity ``|a ∩ b| / |a ∪ b|`` between two sets."""

    kind = MeasureKind.SIMILARITY
    name = "jaccard"

    def value(self, a, b) -> float:
        a = _coerce(a)
        b = _coerce(b)
        if not a and not b:
            # Two empty sets are conventionally identical.
            return 1.0
        intersection = len(a & b)
        union = len(a) + len(b) - intersection
        return intersection / union

    def values_to_query(self, dataset, query) -> np.ndarray:
        # Pack the dataset CSR-style once and reuse the batch kernel: one
        # vectorized membership pass instead of a Python set operation per
        # point.  Non-set datasets fall back to the scalar loop.
        from repro.store import make_store

        store = make_store(dataset)
        if store is not None and store.kind == "sets":
            return self.values_at(store, np.arange(len(store), dtype=np.intp), query)
        query = _coerce(query)
        return np.asarray([self.value(p, query) for p in dataset], dtype=float)

    def values_at(self, store, indices, query) -> np.ndarray:
        if getattr(store, "kind", None) != "sets":
            return super().values_at(store, indices, query)
        query = _coerce(query)
        if query and not isinstance(next(iter(query)), (int, np.integer)):
            # Non-integer query items (strings, floats) cannot be matched
            # against the int64 CSR packing exactly; use the scalar loop.
            return super().values_at(store, indices, query)
        try:
            query_items = np.fromiter(query, dtype=np.int64, count=len(query))
        except (ValueError, TypeError, OverflowError):
            return super().values_at(store, indices, query)
        query_items.sort()
        lengths, flat = store.gather(np.asarray(indices, dtype=np.intp))
        if flat.size and query_items.size:
            positions = np.searchsorted(query_items, flat)
            positions_safe = np.minimum(positions, query_items.size - 1)
            member = (positions < query_items.size) & (query_items[positions_safe] == flat)
            hits = np.concatenate(([0], np.cumsum(member)))
            bounds = np.concatenate(([0], np.cumsum(lengths)))
            intersection = hits[bounds[1:]] - hits[bounds[:-1]]
        else:
            intersection = np.zeros(lengths.shape[0], dtype=np.int64)
        union = lengths + query_items.size - intersection
        # Two empty sets (union == 0) are conventionally identical.
        return np.where(union == 0, 1.0, intersection / np.where(union == 0, 1, union))


def _coerce(point) -> frozenset:
    if isinstance(point, (set, frozenset)):
        return frozenset(point)
    if isinstance(point, np.ndarray) and point.ndim > 1:
        raise UnsupportedDataTypeError(
            "JaccardSimilarity expects set-valued points, got a multi-dimensional array"
        )
    try:
        return as_set_point(point)
    except TypeError as exc:  # non-iterable scalar
        raise UnsupportedDataTypeError(
            f"JaccardSimilarity expects set-valued points, got {type(point).__name__}"
        ) from exc

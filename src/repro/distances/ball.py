"""Brute-force ball queries ``B_S(q, r)`` and neighborhood counts.

These serve two purposes: they are the ground truth that the fair samplers
are tested against, and they implement the Q3 experiment (Figure 3), which
reports the ratio ``b_S(q, cr) / b_S(q, r)`` that appears as an additive term
in the paper's running-time bounds.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.distances.base import Measure
from repro.types import Dataset, Point


def ball_indices(dataset: Dataset, query: Point, threshold: float, measure: Measure) -> np.ndarray:
    """Return the indices of all points of *dataset* near *query*.

    "Near" means within distance ``threshold`` for distance measures and with
    similarity at least ``threshold`` for similarity measures.
    """
    values = measure.values_to_query(dataset, query)
    return np.flatnonzero(measure.within_mask(values, threshold))


def ball_size(dataset: Dataset, query: Point, threshold: float, measure: Measure) -> int:
    """Return ``b_S(q, r)``, the number of near neighbors of *query*."""
    return int(ball_indices(dataset, query, threshold, measure).size)


def neighborhood_sizes(
    dataset: Dataset,
    queries: Sequence[Point],
    thresholds: Sequence[float],
    measure: Measure,
) -> Dict[float, np.ndarray]:
    """Ball sizes for every query at every threshold.

    Returns a mapping ``threshold -> array of b_S(q, threshold)`` aligned with
    the order of *queries*.  Measure values are computed once per query and
    re-used across thresholds, which matters for the Q3 sweep where the same
    query is evaluated at a dozen thresholds.
    """
    thresholds = list(thresholds)
    counts = {t: np.zeros(len(queries), dtype=int) for t in thresholds}
    for qi, query in enumerate(queries):
        values = measure.values_to_query(dataset, query)
        for t in thresholds:
            counts[t][qi] = int(np.count_nonzero(measure.within_mask(values, t)))
    return counts


def cost_ratio(
    dataset: Dataset,
    queries: Sequence[Point],
    r: float,
    relaxed: float,
    measure: Measure,
) -> np.ndarray:
    """Per-query ratio ``b_S(q, cr) / b_S(q, r)`` (Figure 3 quantity).

    Queries with an empty ``B_S(q, r)`` are skipped (the ratio is undefined);
    the returned array only contains ratios for queries with at least one
    near neighbor.
    """
    counts = neighborhood_sizes(dataset, queries, [r, relaxed], measure)
    near = counts[r].astype(float)
    far = counts[relaxed].astype(float)
    mask = near > 0
    return far[mask] / near[mask]

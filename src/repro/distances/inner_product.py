"""Inner-product similarity.

Section 5 of the paper states its bounds for inner-product similarity on unit
length vectors (recall ``||p - q||^2 = 2 - 2 <p, q>`` on the unit sphere), and
the recommender-system motivation uses inner products of user and item
factors from matrix factorization.
"""

from __future__ import annotations

import numpy as np

from repro.distances.base import Measure, MeasureKind
from repro.exceptions import DimensionMismatchError
from repro.registry import register_distance


@register_distance("inner_product")
class InnerProductSimilarity(Measure):
    """Dot-product similarity ``<a, b>`` between dense vectors."""

    kind = MeasureKind.SIMILARITY
    name = "inner_product"

    def value(self, a, b) -> float:
        a = np.asarray(a, dtype=float)
        b = np.asarray(b, dtype=float)
        if a.shape != b.shape:
            raise DimensionMismatchError(
                f"shape mismatch: {a.shape} vs {b.shape} for inner product"
            )
        # einsum keeps the scalar path bitwise-aligned with the batch kernel.
        return float(np.einsum("i,i->", a, b))

    def values_to_query(self, dataset, query) -> np.ndarray:
        data = np.asarray(dataset, dtype=float)
        query = np.asarray(query, dtype=float)
        if data.ndim != 2:
            raise DimensionMismatchError(
                f"expected a 2-D dataset, got array of shape {data.shape}"
            )
        if data.shape[1] != query.shape[0]:
            raise DimensionMismatchError(
                f"query dimension {query.shape[0]} does not match dataset dimension {data.shape[1]}"
            )
        return np.einsum("ij,j->i", data, query)

    def values_at(self, store, indices, query) -> np.ndarray:
        if getattr(store, "kind", None) != "dense":
            return super().values_at(store, indices, query)
        query = np.asarray(query, dtype=float)
        if store.dim != query.shape[0]:
            raise DimensionMismatchError(
                f"query dimension {query.shape[0]} does not match store dimension {store.dim}"
            )
        return np.einsum("ij,j->i", store.gather(indices), query)


def normalize_rows(vectors: np.ndarray) -> np.ndarray:
    """Return a copy of *vectors* with every row scaled to unit l2 norm.

    Zero rows are left unchanged (they cannot be normalized and a zero vector
    has inner product zero with everything, which is the natural behaviour).
    """
    vectors = np.asarray(vectors, dtype=float)
    norms = np.linalg.norm(vectors, axis=1, keepdims=True)
    safe = np.where(norms == 0.0, 1.0, norms)
    return vectors / safe

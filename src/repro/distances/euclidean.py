"""Euclidean (l2) distance."""

from __future__ import annotations

import numpy as np

from repro.distances.base import Measure, MeasureKind
from repro.exceptions import DimensionMismatchError
from repro.registry import register_distance


@register_distance("euclidean")
class EuclideanDistance(Measure):
    """Standard Euclidean distance between dense vectors."""

    kind = MeasureKind.DISTANCE
    name = "euclidean"

    def value(self, a, b) -> float:
        a = np.asarray(a, dtype=float)
        b = np.asarray(b, dtype=float)
        if a.shape != b.shape:
            raise DimensionMismatchError(
                f"shape mismatch: {a.shape} vs {b.shape} for Euclidean distance"
            )
        # Same einsum recipe as the batch kernels, so scalar and vectorized
        # evaluation agree bitwise (BLAS-backed np.linalg.norm does not).
        diff = a - b
        return float(np.sqrt(np.einsum("i,i->", diff, diff)))

    def values_to_query(self, dataset, query) -> np.ndarray:
        data = np.asarray(dataset, dtype=float)
        query = np.asarray(query, dtype=float)
        if data.ndim != 2:
            raise DimensionMismatchError(
                f"expected a 2-D dataset, got array of shape {data.shape}"
            )
        if data.shape[1] != query.shape[0]:
            raise DimensionMismatchError(
                f"query dimension {query.shape[0]} does not match dataset dimension {data.shape[1]}"
            )
        diff = data - query[np.newaxis, :]
        return np.sqrt(np.einsum("ij,ij->i", diff, diff))

    def values_at(self, store, indices, query) -> np.ndarray:
        if getattr(store, "kind", None) != "dense":
            return super().values_at(store, indices, query)
        query = np.asarray(query, dtype=float)
        if store.dim != query.shape[0]:
            raise DimensionMismatchError(
                f"query dimension {query.shape[0]} does not match store dimension {store.dim}"
            )
        diff = store.gather(indices) - query[np.newaxis, :]
        return np.sqrt(np.einsum("ij,ij->i", diff, diff))

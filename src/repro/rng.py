"""Random number generator utilities.

Every randomized component in the library accepts a ``seed`` argument that may
be ``None`` (fresh entropy), an ``int``, or an existing
:class:`numpy.random.Generator`.  Centralising the coercion here keeps the
constructors of the samplers small and guarantees consistent behaviour:
passing the same integer seed twice always reproduces the same index and the
same query answers.
"""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce *seed* into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` or ``SeedSequence`` for a
        deterministic stream, or an existing ``Generator`` which is returned
        unchanged (so components can share a stream).

    Returns
    -------
    numpy.random.Generator
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> list:
    """Derive *count* independent generators from a single seed.

    This is used when a data structure needs several internally independent
    randomness sources (e.g. one per hash table) that must still be fully
    determined by the user-provided seed.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Spawn from the generator's bit generator seed sequence when
        # available; otherwise draw child seeds from the stream itself.
        seed_seq = seed.bit_generator.seed_seq  # type: ignore[attr-defined]
        if seed_seq is not None:
            return [np.random.default_rng(s) for s in seed_seq.spawn(count)]
        child_seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in child_seeds]
    seq = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in seq.spawn(count)]


def random_permutation_ranks(rng: np.random.Generator, n: int) -> np.ndarray:
    """Return a uniformly random assignment of the ranks ``0 .. n-1``.

    ``ranks[i]`` is the rank of data point ``i`` under the permutation.  The
    Section 3 and Section 4 data structures of the paper rely on this
    permutation being independent of the LSH randomness.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    return rng.permutation(n)

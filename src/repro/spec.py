"""Declarative, serializable descriptions of samplers, measures and engines.

A spec answers "which sampler over which distance with which LSH family and
which parameters" as plain data.  Every layer consumes the same description:
:meth:`SamplerSpec.build` constructs the ready-to-fit sampler by resolving
names through :mod:`repro.registry`, the :class:`~repro.api.FairNN` facade
runs on an :class:`EngineSpec`, engine snapshots persist the originating
spec in their manifest, and the experiment configs emit specs instead of
hard-coding class names.

All four spec types are frozen dataclasses with a validated
``to_dict``/``from_dict``/JSON round-trip (``Spec.from_dict(spec.to_dict())
== spec``) and **bitwise-reproducible seeding**: building a spec with a seed
produces a sampler whose seeded query answers are byte-identical to the
directly constructed equivalent, because ``build()`` forwards exactly the
constructor arguments a hand-written call would pass.

Example
-------
>>> from repro.spec import LSHSpec, SamplerSpec
>>> spec = SamplerSpec(
...     sampler="permutation",
...     params={"radius": 0.4, "far_radius": 0.1},
...     lsh=LSHSpec(family="minhash"),
...     seed=7,
... )
>>> sampler = spec.build()          # == PermutationFairSampler(MinHashFamily(), radius=0.4, far_radius=0.1, seed=7)
>>> SamplerSpec.from_json(spec.to_json()) == spec
True
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from repro.exceptions import InvalidParameterError
from repro.registry import SAMPLERS, get_distance, get_lsh_family, get_sampler
from repro.store.spec import StoreSpec

__all__ = [
    "DistanceSpec",
    "LSHSpec",
    "SamplerSpec",
    "EngineSpec",
    "spec_from_dict",
]

#: Sentinel distinguishing "no seed passed" from "seed=None passed".
_UNSET = object()

#: Placement policies an :class:`EngineSpec` may name for sharded serving
#: (kept in sync with :data:`repro.engine.sharded.PLACEMENTS`, which the
#: engine layer re-validates at construction time).
_PLACEMENTS = ("round_robin", "hash")

#: Sharded batch executors an :class:`EngineSpec` may select: a thread pool
#: in the serving process, or supervised per-shard worker processes over
#: shared memory (:class:`repro.engine.procpool.ProcessShardedEngine`).
_EXECUTORS = ("thread", "process")

#: Write-ahead-log fsync policies an :class:`EngineSpec` may name (kept in
#: sync with :data:`repro.engine.wal.FSYNC_POLICIES`): ``"always"`` fsyncs
#: every append, ``"interval"`` flushes every append and fsyncs
#: opportunistically, ``"off"`` only flushes to the OS page cache.
_FSYNC_POLICIES = ("always", "interval", "off")


def _checked_params(params: Mapping[str, Any], owner: str) -> Dict[str, Any]:
    """Validate and normalize a spec's parameter mapping.

    Keys must be strings (they become constructor keyword arguments) and
    values must survive a JSON round-trip — specs are serializable by
    contract, and catching a stray ndarray here beats a confusing failure
    in ``to_json`` later.
    """
    if not isinstance(params, Mapping):
        raise InvalidParameterError(f"{owner} params must be a mapping, got {type(params).__name__}")
    normalized = dict(params)
    for key in normalized:
        if not isinstance(key, str) or not key.isidentifier():
            raise InvalidParameterError(
                f"{owner} parameter names must be valid identifiers, got {key!r}"
            )
    try:
        json.dumps(normalized)
    except TypeError as error:
        raise InvalidParameterError(f"{owner} params must be JSON-serializable: {error}") from None
    return normalized


def _require_name(value: Any, what: str) -> str:
    if not isinstance(value, str) or not value:
        raise InvalidParameterError(f"{what} must be a non-empty string, got {value!r}")
    return value


def _reject_unknown_keys(data: Mapping[str, Any], allowed: tuple, what: str) -> None:
    unknown = set(data) - set(allowed)
    if unknown:
        raise InvalidParameterError(
            f"unknown {what} keys {sorted(unknown)}; allowed: {sorted(allowed)}"
        )


class _JsonRoundTrip:
    """Shared JSON serialization on top of each spec's ``to_dict``/``from_dict``."""

    def to_json(self, indent: Optional[int] = None) -> str:
        """The spec as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str):
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))


@dataclass(frozen=True)
class DistanceSpec(_JsonRoundTrip):
    """A distance/similarity measure as a registry name plus parameters.

    >>> DistanceSpec("jaccard").build()          # == JaccardSimilarity()
    """

    name: str
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        _require_name(self.name, "DistanceSpec.name")
        object.__setattr__(self, "params", _checked_params(self.params, "DistanceSpec"))

    def build(self):
        """Construct the measure instance this spec describes."""
        return get_distance(self.name)(**self.params)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable plain-dict form (inverse of :meth:`from_dict`)."""
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DistanceSpec":
        """Reconstruct a spec from :meth:`to_dict` output (validated)."""
        _reject_unknown_keys(data, ("name", "params"), "DistanceSpec")
        return cls(name=data.get("name"), params=dict(data.get("params", {})))


@dataclass(frozen=True)
class LSHSpec(_JsonRoundTrip):
    """An LSH family as a registry name plus constructor parameters.

    >>> LSHSpec("pstable", {"dim": 16, "width": 4.0}).build()   # == PStableFamily(dim=16, width=4.0)
    """

    family: str
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        _require_name(self.family, "LSHSpec.family")
        object.__setattr__(self, "params", _checked_params(self.params, "LSHSpec"))

    def build(self):
        """Construct the (base, un-concatenated) family this spec describes."""
        return get_lsh_family(self.family)(**self.params)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable plain-dict form (inverse of :meth:`from_dict`)."""
        return {"family": self.family, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LSHSpec":
        """Reconstruct a spec from :meth:`to_dict` output (validated)."""
        _reject_unknown_keys(data, ("family", "params"), "LSHSpec")
        return cls(family=data.get("family"), params=dict(data.get("params", {})))


@dataclass(frozen=True)
class SamplerSpec(_JsonRoundTrip):
    """A complete, buildable description of one near-neighbor sampler.

    Attributes
    ----------
    sampler:
        Registry name of the sampler class (see
        :func:`repro.registry.sampler_names`).
    params:
        Keyword arguments forwarded verbatim to the sampler constructor
        (``radius``, ``far_radius``, ``num_hashes``, ...).
    lsh:
        The LSH family, for samplers registered with ``inputs="family"``.
    distance:
        The measure, for samplers registered with ``inputs="measure"``
        (e.g. the exact baseline).
    seed:
        Default seed :meth:`build` passes to the constructor; an explicit
        ``build(seed=...)`` overrides it.  Same spec + same seed + same
        dataset ⇒ byte-identical query answers.
    """

    sampler: str
    params: Dict[str, Any] = field(default_factory=dict)
    lsh: Optional[LSHSpec] = None
    distance: Optional[DistanceSpec] = None
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        _require_name(self.sampler, "SamplerSpec.sampler")
        object.__setattr__(self, "params", _checked_params(self.params, "SamplerSpec"))
        if self.lsh is not None and not isinstance(self.lsh, LSHSpec):
            raise InvalidParameterError("SamplerSpec.lsh must be an LSHSpec or None")
        if self.distance is not None and not isinstance(self.distance, DistanceSpec):
            raise InvalidParameterError("SamplerSpec.distance must be a DistanceSpec or None")
        if self.seed is not None and not isinstance(self.seed, int):
            raise InvalidParameterError(f"SamplerSpec.seed must be an int or None, got {self.seed!r}")
        if "seed" in self.params:
            raise InvalidParameterError("pass the seed via SamplerSpec.seed, not params['seed']")

    # ------------------------------------------------------------------
    def build(self, seed: Any = _UNSET):
        """Construct the (unfitted) sampler, resolving names via the registry.

        The constructor call is exactly what a hand-written equivalent would
        be — ``cls(family_or_measure, **params, seed=seed)`` — so a spec-built
        sampler's seeded behaviour is bitwise identical to a direct one.
        """
        cls = get_sampler(self.sampler)
        inputs = SAMPLERS.metadata(self.sampler).get("inputs", "family")
        effective_seed = self.seed if seed is _UNSET else seed
        if inputs == "family":
            if self.lsh is None:
                raise InvalidParameterError(
                    f"sampler {self.sampler!r} is built over an LSH family; set SamplerSpec.lsh"
                )
            if self.distance is not None:
                raise InvalidParameterError(
                    f"sampler {self.sampler!r} takes its measure from the LSH family; "
                    "drop SamplerSpec.distance"
                )
            return cls(self.lsh.build(), **self.params, seed=effective_seed)
        if inputs == "measure":
            if self.distance is None:
                raise InvalidParameterError(
                    f"sampler {self.sampler!r} is built over a measure; set SamplerSpec.distance"
                )
            if self.lsh is not None:
                raise InvalidParameterError(
                    f"sampler {self.sampler!r} takes a measure, not an LSH family; drop SamplerSpec.lsh"
                )
            return cls(self.distance.build(), **self.params, seed=effective_seed)
        if self.lsh is not None or self.distance is not None:
            raise InvalidParameterError(
                f"sampler {self.sampler!r} is self-contained; drop SamplerSpec.lsh/.distance"
            )
        return cls(**self.params, seed=effective_seed)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable plain-dict form (inverse of :meth:`from_dict`)."""
        return {
            "sampler": self.sampler,
            "params": dict(self.params),
            "lsh": None if self.lsh is None else self.lsh.to_dict(),
            "distance": None if self.distance is None else self.distance.to_dict(),
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SamplerSpec":
        """Reconstruct a spec from :meth:`to_dict` output (validated)."""
        _reject_unknown_keys(data, ("sampler", "params", "lsh", "distance", "seed"), "SamplerSpec")
        lsh = data.get("lsh")
        distance = data.get("distance")
        return cls(
            sampler=data.get("sampler"),
            params=dict(data.get("params", {})),
            lsh=None if lsh is None else LSHSpec.from_dict(lsh),
            distance=None if distance is None else DistanceSpec.from_dict(distance),
            seed=data.get("seed"),
        )


@dataclass(frozen=True)
class EngineSpec(_JsonRoundTrip):
    """A serving configuration: named samplers over one shared table set.

    Attributes
    ----------
    samplers:
        Mapping of serving name → :class:`SamplerSpec`.  All LSH-backed
        samplers share one table set built from the primary's parameters
        (insertion order is preserved through the JSON round-trip).
    primary:
        Name of the sampler whose parameter rule sizes the shared tables
        and whose engine is persisted by snapshots; defaults to the first
        entry.
    dynamic:
        Whether :meth:`~repro.api.FairNN.serve` builds mutable
        (:class:`~repro.engine.dynamic.DynamicLSHTables`) or static tables.
    max_tombstone_fraction:
        Compaction threshold forwarded to the dynamic table layer.
    batch_hashing, coalesce_duplicates:
        Forwarded to every :class:`~repro.engine.batch.BatchQueryEngine`.
    n_shards:
        Number of index partitions :meth:`~repro.api.FairNN.serve` builds.
        ``1`` (the default) keeps the unsharded dynamic layout; values above
        one build a :class:`~repro.engine.sharded.ShardedLSHTables` served
        by :class:`~repro.engine.sharded.ShardedEngine` workers — responses
        stay byte-identical to unsharded serving for the same spec + seed +
        dataset.  Requires ``dynamic=True``.
    placement:
        Shard placement policy, ``"round_robin"`` or ``"hash"`` (see
        :data:`repro.engine.sharded.PLACEMENTS`).
    executor:
        How sharded batches are executed: ``"thread"`` (the default — a
        :class:`~repro.engine.sharded.ShardedEngine` thread pool in the
        serving process) or ``"process"`` (a
        :class:`~repro.engine.procpool.ProcessShardedEngine` running each
        shard in a supervised worker process over shared-memory dataset
        buffers).  Responses are byte-identical either way; ``"process"``
        adds crash isolation and typed
        :class:`~repro.exceptions.WorkerCrashedError` failure semantics.
        Requires ``dynamic=True``.
    wal_fsync:
        Fsync policy the write-ahead log uses when :meth:`~repro.api.
        FairNN.serve` is given a ``data_dir``: ``"always"`` (fsync every
        append — survives power loss), ``"interval"`` (the default; flush
        every append, fsync opportunistically — survives process crash) or
        ``"off"`` (flush only).  Ignored when serving without a data
        directory; persisted in snapshots so a recovered engine keeps its
        durability configuration.
    store:
        Which storage tier serves the dataset
        (:class:`~repro.store.StoreSpec`): ``None`` (the default) means the
        in-RAM columnar stores; a spec with ``backend="memmap"`` or
        ``backend="remote"`` serves the corpus out-of-core from a format-v5
        snapshot.  Persisted in snapshots so checkpoints and
        :meth:`~repro.api.FairNN.recover` come back on the same tier.
    prefix_budget, prefix_budget_cap:
        Opening total rank-prefix gather budget for sharded engines and the
        ceiling the self-tuning controller may widen it to (see
        :class:`~repro.engine.gather.PrefixBudgetController`).  ``None``
        (the default) keeps the engine defaults; ignored when
        ``n_shards == 1``.
    """

    samplers: Dict[str, SamplerSpec] = field(default_factory=dict)
    primary: Optional[str] = None
    dynamic: bool = True
    max_tombstone_fraction: float = 0.25
    batch_hashing: bool = True
    coalesce_duplicates: bool = True
    n_shards: int = 1
    placement: str = "round_robin"
    executor: str = "thread"
    wal_fsync: str = "interval"
    store: Optional[StoreSpec] = None
    prefix_budget: Optional[int] = None
    prefix_budget_cap: Optional[int] = None

    def __post_init__(self) -> None:
        if not isinstance(self.samplers, Mapping) or not self.samplers:
            raise InvalidParameterError("EngineSpec.samplers must be a non-empty mapping")
        samplers = dict(self.samplers)
        for name, spec in samplers.items():
            _require_name(name, "EngineSpec sampler name")
            if not isinstance(spec, SamplerSpec):
                raise InvalidParameterError(
                    f"EngineSpec.samplers[{name!r}] must be a SamplerSpec, got {type(spec).__name__}"
                )
        object.__setattr__(self, "samplers", samplers)
        primary = self.primary if self.primary is not None else next(iter(samplers))
        if primary not in samplers:
            raise InvalidParameterError(
                f"EngineSpec.primary {primary!r} is not one of {sorted(samplers)}"
            )
        object.__setattr__(self, "primary", primary)
        if not 0.0 < float(self.max_tombstone_fraction) <= 1.0:
            raise InvalidParameterError("max_tombstone_fraction must be in (0, 1]")
        if not isinstance(self.n_shards, int) or isinstance(self.n_shards, bool) or self.n_shards < 1:
            raise InvalidParameterError(
                f"EngineSpec.n_shards must be an int >= 1, got {self.n_shards!r}"
            )
        if self.placement not in _PLACEMENTS:
            raise InvalidParameterError(
                f"EngineSpec.placement must be one of {_PLACEMENTS}, got {self.placement!r}"
            )
        if self.n_shards > 1 and not self.dynamic:
            raise InvalidParameterError(
                "EngineSpec.n_shards > 1 requires dynamic=True (sharding is a serving-layer structure)"
            )
        if self.executor not in _EXECUTORS:
            raise InvalidParameterError(
                f"EngineSpec.executor must be one of {_EXECUTORS}, got {self.executor!r}"
            )
        if self.executor == "process" and not self.dynamic:
            raise InvalidParameterError(
                "EngineSpec.executor='process' requires dynamic=True "
                "(shard workers replicate the dynamic mutation stream)"
            )
        if self.wal_fsync not in _FSYNC_POLICIES:
            raise InvalidParameterError(
                f"EngineSpec.wal_fsync must be one of {_FSYNC_POLICIES}, got {self.wal_fsync!r}"
            )
        if self.store is not None:
            if isinstance(self.store, (str, dict)):
                object.__setattr__(self, "store", StoreSpec.coerce(self.store))
            elif not isinstance(self.store, StoreSpec):
                raise InvalidParameterError(
                    f"EngineSpec.store must be a StoreSpec, backend name, or None, "
                    f"got {type(self.store).__name__}"
                )
        for knob in ("prefix_budget", "prefix_budget_cap"):
            value = getattr(self, knob)
            if value is None:
                continue
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise InvalidParameterError(
                    f"EngineSpec.{knob} must be an int >= 1 or None, got {value!r}"
                )
        if (
            self.prefix_budget is not None
            and self.prefix_budget_cap is not None
            and self.prefix_budget_cap < self.prefix_budget
        ):
            raise InvalidParameterError(
                "EngineSpec.prefix_budget_cap must be >= prefix_budget, got "
                f"{self.prefix_budget_cap} < {self.prefix_budget}"
            )

    # ------------------------------------------------------------------
    @property
    def primary_spec(self) -> SamplerSpec:
        """The :class:`SamplerSpec` of the primary sampler."""
        return self.samplers[self.primary]

    def build(self):
        """An (unfitted) :class:`~repro.api.FairNN` facade over this spec."""
        from repro.api import FairNN  # circular at import time, not at runtime

        return FairNN(self)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable plain-dict form (inverse of :meth:`from_dict`)."""
        return {
            "samplers": {name: spec.to_dict() for name, spec in self.samplers.items()},
            "primary": self.primary,
            "dynamic": self.dynamic,
            "max_tombstone_fraction": self.max_tombstone_fraction,
            "batch_hashing": self.batch_hashing,
            "coalesce_duplicates": self.coalesce_duplicates,
            "n_shards": self.n_shards,
            "placement": self.placement,
            "executor": self.executor,
            "wal_fsync": self.wal_fsync,
            "store": None if self.store is None else self.store.to_dict(),
            "prefix_budget": self.prefix_budget,
            "prefix_budget_cap": self.prefix_budget_cap,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EngineSpec":
        """Reconstruct a spec from :meth:`to_dict` output (validated)."""
        _reject_unknown_keys(
            data,
            (
                "samplers",
                "primary",
                "dynamic",
                "max_tombstone_fraction",
                "batch_hashing",
                "coalesce_duplicates",
                "n_shards",
                "placement",
                "executor",
                "wal_fsync",
                "store",
                "prefix_budget",
                "prefix_budget_cap",
            ),
            "EngineSpec",
        )
        samplers = data.get("samplers")
        if not isinstance(samplers, Mapping):
            raise InvalidParameterError("EngineSpec dict needs a 'samplers' mapping")
        return cls(
            samplers={name: SamplerSpec.from_dict(spec) for name, spec in samplers.items()},
            primary=data.get("primary"),
            dynamic=bool(data.get("dynamic", True)),
            max_tombstone_fraction=float(data.get("max_tombstone_fraction", 0.25)),
            batch_hashing=bool(data.get("batch_hashing", True)),
            coalesce_duplicates=bool(data.get("coalesce_duplicates", True)),
            n_shards=int(data.get("n_shards", 1)),
            placement=data.get("placement", "round_robin"),
            executor=data.get("executor", "thread"),
            wal_fsync=data.get("wal_fsync", "interval"),
            store=(
                None
                if data.get("store") is None
                else StoreSpec.from_dict(data["store"])
            ),
            prefix_budget=(
                None if data.get("prefix_budget") is None else int(data["prefix_budget"])
            ),
            prefix_budget_cap=(
                None
                if data.get("prefix_budget_cap") is None
                else int(data["prefix_budget_cap"])
            ),
        )


def spec_from_dict(data: Mapping[str, Any]):
    """Dispatch a plain dict to the spec type it describes.

    ``{"samplers": ...}`` → :class:`EngineSpec`, ``{"sampler": ...}`` →
    :class:`SamplerSpec`, ``{"family": ...}`` → :class:`LSHSpec`,
    ``{"name": ...}`` → :class:`DistanceSpec`.
    """
    if not isinstance(data, Mapping):
        raise InvalidParameterError(f"spec dict expected, got {type(data).__name__}")
    if "samplers" in data:
        return EngineSpec.from_dict(data)
    if "sampler" in data:
        return SamplerSpec.from_dict(data)
    if "family" in data:
        return LSHSpec.from_dict(data)
    if "name" in data:
        return DistanceSpec.from_dict(data)
    raise InvalidParameterError(
        "cannot infer spec type: expected one of the keys 'samplers', 'sampler', 'family', 'name'"
    )

"""Q3: the extra cost term ``b_S(q, cr) / b_S(q, r)`` (Figure 3).

For every combination of ``r`` and ``c`` in the paper's grid, the experiment
computes, over the "interesting" query users, the distribution of the ratio
between the number of users at similarity at least ``cr`` and the number at
similarity at least ``r`` — the additive term in all the paper's query-time
bounds.  The expected shape: on the Last.FM-like dataset the ratios stay
small (tens) even for large gaps, while on the MovieLens-like dataset small
``c`` at ``r = 0.25`` pushes the ratio into the hundreds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.data.queries import select_interesting_queries
from repro.data.sets import generate_lastfm_like, generate_movielens_like
from repro.distances.ball import cost_ratio
from repro.experiments.config import Q3Config


@dataclass
class Q3Result:
    """Ratios ``b_cr / b_r`` per (r, c) cell.

    ``ratios`` maps ``(r, c)`` to the per-query ratio array (as a list).
    """

    config: Q3Config
    ratios: Dict[Tuple[float, float], List[float]] = field(default_factory=dict)

    def cell_summary(self) -> Dict[Tuple[float, float], Dict[str, float]]:
        """Median / mean / max ratio per (r, c) cell."""
        summary: Dict[Tuple[float, float], Dict[str, float]] = {}
        for key, values in self.ratios.items():
            array = np.asarray(values, dtype=float)
            if array.size == 0:
                summary[key] = {"median": 0.0, "mean": 0.0, "max": 0.0}
            else:
                summary[key] = {
                    "median": float(np.median(array)),
                    "mean": float(array.mean()),
                    "max": float(array.max()),
                }
        return summary


def _load_dataset(config: Q3Config):
    if config.dataset == "lastfm":
        return generate_lastfm_like(num_users=config.num_users, seed=config.seed)
    return generate_movielens_like(num_users=config.num_users, seed=config.seed)


def run_q3(config: Q3Config = Q3Config()) -> Q3Result:
    """Run the Q3 sweep and return the per-cell ratio distributions."""
    config.validate()
    dataset = _load_dataset(config)
    measure = config.distance_spec().build()
    query_indices = select_interesting_queries(
        dataset,
        measure,
        num_queries=config.num_queries,
        min_neighbors=config.min_neighbors,
        threshold=config.interesting_threshold,
        seed=config.seed,
    )
    queries = [dataset[i] for i in query_indices]

    result = Q3Result(config=config)
    for r in config.radii:
        for c in config.c_values:
            relaxed = c * r
            ratios = cost_ratio(dataset, queries, r=r, relaxed=relaxed, measure=measure)
            result.ratios[(float(r), float(c))] = [float(v) for v in ratios]
    return result


def format_q3(result: Q3Result) -> str:
    """Render the Q3 result as the text analogue of Figure 3."""
    lines: List[str] = []
    lines.append(
        f"Q3 cost ratio b(q, cr)/b(q, r) — dataset={result.config.dataset}, "
        f"{result.config.num_queries} queries"
    )
    lines.append("")
    lines.append(f"{'r':>6}{'c':>8}{'cr':>8}{'median':>10}{'mean':>10}{'max':>10}")
    summary = result.cell_summary()
    for (r, c), stats in sorted(summary.items()):
        lines.append(
            f"{r:>6.2f}{c:>8.2f}{r * c:>8.3f}{stats['median']:>10.1f}"
            f"{stats['mean']:>10.1f}{stats['max']:>10.1f}"
        )
    return "\n".join(lines)

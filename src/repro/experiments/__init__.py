"""Reproductions of the paper's experimental evaluation (Section 6).

Each experiment module exposes a ``run_*`` function returning a plain result
object plus a ``format_*`` helper rendering the same rows/series the paper
reports; :mod:`repro.experiments.runner` wires them into a small CLI
(``python -m repro.experiments.runner q1|q2|q3|all``).
"""

from repro.experiments.config import Q1Config, Q2Config, Q3Config
from repro.experiments.q1_fairness import Q1Result, run_q1, format_q1
from repro.experiments.q2_approximate import Q2Result, run_q2, format_q2
from repro.experiments.q3_cost_ratio import Q3Result, run_q3, format_q3

__all__ = [
    "Q1Config",
    "Q2Config",
    "Q3Config",
    "Q1Result",
    "run_q1",
    "format_q1",
    "Q2Result",
    "run_q2",
    "format_q2",
    "Q3Result",
    "run_q3",
    "format_q3",
]

"""Plain-text report helpers shared by the experiment CLI and benchmarks."""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], min_width: int = 8) -> str:
    """Render a simple fixed-width text table.

    Column widths adapt to the longest cell; floats are formatted with four
    significant digits.
    """
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.4g}"
        return str(cell)

    rendered_rows = [[render(cell) for cell in row] for row in rows]
    widths = [max(min_width, len(h)) for h in headers]
    for row in rendered_rows:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    lines = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))]
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_key_values(title: str, values: Dict[str, object]) -> str:
    """Render a titled key/value block."""
    lines: List[str] = [title]
    for key, value in values.items():
        if isinstance(value, float):
            lines.append(f"  {key}: {value:.4g}")
        else:
            lines.append(f"  {key}: {value}")
    return "\n".join(lines)

"""Q1: how (un)fair is standard LSH compared to fair LSH? (Figure 1).

The experiment builds the 1-bit MinHash LSH index with the paper's parameter
rule, audits both the standard first-found query and the fair samplers over
the same repeated queries, and reports the per-similarity relative
frequencies (the data behind the Figure 1 scatter plots) together with the
per-query total-variation-from-uniform summary.  The expected shape is the
paper's: standard LSH shows a clear gradient towards high-similarity points,
while the fair samplers are flat.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.data.queries import select_interesting_queries
from repro.data.sets import generate_lastfm_like, generate_movielens_like
from repro.experiments.config import Q1Config
from repro.fairness.audit import AuditReport, FairnessAuditor
from repro.lsh.params import select_parameters


@dataclass
class Q1Result:
    """Outcome of the Q1 experiment.

    ``reports`` maps sampler name to its :class:`AuditReport`; ``params``
    records the (K, L) the parameter rule selected.
    """

    config: Q1Config
    params: Dict[str, float]
    reports: Dict[str, AuditReport] = field(default_factory=dict)

    def slope_summary(self) -> Dict[str, float]:
        """Correlation between similarity and report frequency per sampler.

        A positive value means the sampler over-reports high-similarity
        points (the bias Figure 1 shows for standard LSH); values near zero
        mean a flat, fair output.
        """
        import numpy as np

        slopes: Dict[str, float] = {}
        for name, report in self.reports.items():
            xs: List[float] = []
            ys: List[float] = []
            for audit in report.queries:
                for similarity, frequency, _ in audit.by_similarity.as_sorted_rows():
                    xs.append(similarity)
                    ys.append(frequency)
            if len(xs) >= 2 and np.std(xs) > 0 and np.std(ys) > 0:
                slopes[name] = float(np.corrcoef(xs, ys)[0, 1])
            else:
                slopes[name] = 0.0
        return slopes


def _load_dataset(config: Q1Config):
    if config.dataset == "lastfm":
        return generate_lastfm_like(num_users=config.num_users, seed=config.seed)
    return generate_movielens_like(num_users=config.num_users, seed=config.seed)


def run_q1(config: Q1Config = Q1Config()) -> Q1Result:
    """Run the Q1 experiment and return per-sampler audit reports."""
    config.validate()
    dataset = _load_dataset(config)
    # The measure and family are declarative config values resolved through
    # the registries — swapping either for a whole experiment means editing
    # the config's spec methods, not this runner.
    measure = config.distance_spec().build()
    family = config.lsh_spec().build()

    params = select_parameters(
        family,
        near_threshold=config.radius,
        far_threshold=config.far_similarity,
        n=len(dataset),
        recall=config.recall,
        max_expected_far_collisions=config.max_far_collisions,
    )

    query_indices = select_interesting_queries(
        dataset,
        measure,
        num_queries=config.num_queries,
        min_neighbors=config.min_neighbors,
        threshold=config.interesting_threshold,
        seed=config.seed,
    )
    queries = [dataset[i] for i in query_indices]

    samplers = {
        name: spec.build()
        for name, spec in config.sampler_specs(params.k, params.l).items()
    }

    auditor = FairnessAuditor(
        dataset, measure, radius=config.radius, repetitions=config.repetitions
    )
    result = Q1Result(
        config=config,
        params={
            "K": params.k,
            "L": params.l,
            "recall": params.recall,
            "expected_far_collisions": params.expected_far_collisions,
        },
    )
    for name, sampler in samplers.items():
        sampler.fit(dataset)
        result.reports[name] = auditor.audit(
            sampler,
            queries,
            sampler_name=name,
            exclude_indices=query_indices,
        )
    return result


def format_q1(result: Q1Result) -> str:
    """Render the Q1 result as the text analogue of Figure 1."""
    lines: List[str] = []
    lines.append(
        f"Q1 fairness comparison — dataset={result.config.dataset}, r={result.config.radius}, "
        f"{result.config.repetitions} repetitions/query"
    )
    lines.append(
        f"LSH parameters: K={result.params['K']}, L={result.params['L']}, "
        f"recall={result.params['recall']:.3f}"
    )
    slopes = result.slope_summary()
    lines.append("")
    lines.append(f"{'sampler':<22}{'mean TV':>10}{'mean Gini':>12}{'freq~sim corr':>16}{'fail rate':>12}")
    for name, report in result.reports.items():
        lines.append(
            f"{name:<22}{report.mean_tv:>10.3f}{report.mean_gini:>12.3f}"
            f"{slopes[name]:>16.3f}{report.mean_failure_rate:>12.3f}"
        )
    lines.append("")
    lines.append("Per-similarity mean relative frequency (first query, per sampler):")
    for name, report in result.reports.items():
        if not report.queries:
            continue
        rows = report.queries[0].by_similarity.as_sorted_rows()
        rendered = ", ".join(f"{sim:.2f}:{freq:.4f}" for sim, freq, _ in rows[:12])
        lines.append(f"  {name:<20} {rendered}")
    return "\n".join(lines)

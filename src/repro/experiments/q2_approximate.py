"""Q2: unfairness of the approximate-neighborhood notion (Figure 2).

Reproduces the Section 6.2 adversarial instance: the approximate sampler
(uniform over the colliding points within the relaxed radius ``cr``) reports
the isolated point ``X`` (similarity 0.5) far more often than ``Y``
(similarity 0.6), because ``Y`` is surrounded by the tight cluster ``M`` that
floods the buckets whenever ``Y`` appears in them.  The paper reports a
factor of more than 50x; the exact factor depends on the LSH parameters, but
the ordering ``P[X] >> P[Y]`` and ``P[Z]`` large is the result to reproduce.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.data.adversarial import AdversarialInstance, clustered_neighborhood_instance
from repro.experiments.config import Q2Config
from repro.lsh.params import select_parameters


@dataclass
class Q2Result:
    """Sampling probabilities of the landmark points across trials.

    ``probabilities`` maps the labels ``"X"``, ``"Y"``, ``"Z"`` and
    ``"cluster"`` to one empirical probability per trial (each trial rebuilds
    the data structure with fresh randomness, which is how the paper obtains
    its quartile error bars).
    """

    config: Q2Config
    instance_size: int
    probabilities: Dict[str, List[float]] = field(default_factory=dict)

    def quartiles(self) -> Dict[str, Dict[str, float]]:
        """Median and quartiles of the per-trial probabilities per label."""
        summary: Dict[str, Dict[str, float]] = {}
        for label, values in self.probabilities.items():
            array = np.asarray(values, dtype=float)
            summary[label] = {
                "q25": float(np.percentile(array, 25)),
                "median": float(np.median(array)),
                "q75": float(np.percentile(array, 75)),
                "mean": float(array.mean()),
            }
        return summary

    def x_over_y_ratio(self) -> float:
        """How many times more often X is reported than Y (the headline number)."""
        mean_x = float(np.mean(self.probabilities.get("X", [0.0])))
        mean_y = float(np.mean(self.probabilities.get("Y", [0.0])))
        if mean_y == 0.0:
            return float("inf") if mean_x > 0 else 1.0
        return mean_x / mean_y


def run_q2(config: Q2Config = Q2Config()) -> Q2Result:
    """Run the Q2 experiment and return per-landmark sampling probabilities."""
    config.validate()
    instance: AdversarialInstance = clustered_neighborhood_instance(config.min_subset_size)
    dataset = instance.dataset
    # Declarative: Q2Config.lsh_spec() documents why full MinHash buckets
    # (rather than the 1-bit reduction) are required for this instance.
    family = config.lsh_spec().build()
    params = select_parameters(
        family,
        near_threshold=config.radius,
        far_threshold=config.far_similarity,
        n=len(dataset),
        recall=config.recall,
        max_expected_far_collisions=config.max_far_collisions,
    )

    result = Q2Result(config=config, instance_size=len(dataset))
    result.probabilities = {"X": [], "Y": [], "Z": [], "cluster": []}
    cluster_set = set(instance.cluster_indices)

    for trial in range(config.trials):
        sampler = config.sampler_spec(params.k, params.l, trial).build()
        sampler.fit(dataset)
        counts = {"X": 0, "Y": 0, "Z": 0, "cluster": 0}
        successes = 0
        for _ in range(config.repetitions):
            index = sampler.sample(instance.query)
            if index is None:
                continue
            successes += 1
            if index == instance.index_x:
                counts["X"] += 1
            elif index == instance.index_y:
                counts["Y"] += 1
            elif index == instance.index_z:
                counts["Z"] += 1
            elif index in cluster_set:
                counts["cluster"] += 1
        denominator = max(1, successes)
        for label in counts:
            result.probabilities[label].append(counts[label] / denominator)
    return result


def format_q2(result: Q2Result) -> str:
    """Render the Q2 result as the text analogue of Figure 2."""
    lines: List[str] = []
    lines.append(
        f"Q2 approximate-neighborhood fairness — instance of {result.instance_size} sets, "
        f"r={result.config.radius}, cr={result.config.relaxed}, "
        f"{result.config.trials} trials x {result.config.repetitions} repetitions"
    )
    lines.append("")
    lines.append(f"{'point':<10}{'similarity':>12}{'q25':>10}{'median':>10}{'q75':>10}{'mean':>10}")
    similarity = {"X": 0.5, "Y": 0.6, "Z": 0.9, "cluster": "0.5-0.56"}
    for label, stats in result.quartiles().items():
        lines.append(
            f"{label:<10}{str(similarity[label]):>12}{stats['q25']:>10.4f}"
            f"{stats['median']:>10.4f}{stats['q75']:>10.4f}{stats['mean']:>10.4f}"
        )
    lines.append("")
    lines.append(f"X is reported {result.x_over_y_ratio():.1f}x more often than Y "
                 "(the paper reports a factor above 50x)")
    return "\n".join(lines)

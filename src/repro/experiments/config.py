"""Configuration dataclasses for the three experiments.

The defaults follow the paper's setup but with smaller repetition counts and
dataset sizes so that the full suite runs on a laptop in minutes; every knob
the paper fixes (radii, the Q2 instance, the c grid of Q3) is exposed so the
full-scale run is a matter of passing larger numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.exceptions import InvalidParameterError


@dataclass
class Q1Config:
    """Configuration of the Q1 fairness comparison (Figure 1).

    Attributes mirror Section 6: 1-bit MinHash LSH, ``K`` chosen for at most
    ``max_far_collisions`` expected collisions at similarity
    ``far_similarity``, ``L`` for ``recall`` at similarity ``radius``,
    queries drawn from "interesting" users (>= ``min_neighbors`` neighbors at
    similarity ``interesting_threshold``).
    """

    dataset: str = "lastfm"
    num_users: Optional[int] = 600
    radius: float = 0.15
    far_similarity: float = 0.1
    max_far_collisions: float = 5.0
    recall: float = 0.99
    num_queries: int = 10
    min_neighbors: int = 40
    interesting_threshold: float = 0.2
    repetitions: int = 800
    seed: int = 42

    def validate(self) -> None:
        if self.dataset not in ("lastfm", "movielens"):
            raise InvalidParameterError(f"unknown dataset {self.dataset!r}")
        if not 0.0 < self.radius < 1.0:
            raise InvalidParameterError("radius must be a Jaccard similarity in (0, 1)")
        if self.repetitions < 1 or self.num_queries < 1:
            raise InvalidParameterError("repetitions and num_queries must be >= 1")


@dataclass
class Q2Config:
    """Configuration of the Q2 approximate-neighborhood experiment (Figure 2).

    Whether the cluster ``M`` floods the query's buckets is decided by the
    *construction* randomness (the drawn hash functions), not by the query
    randomness, so the empirical sampling probabilities must be averaged over
    many independent constructions (``trials``); the per-construction
    repetition count can stay small.
    """

    min_subset_size: int = 15
    radius: float = 0.9
    relaxed: float = 0.5
    repetitions: int = 100
    trials: int = 24
    recall: float = 0.99
    max_far_collisions: float = 5.0
    far_similarity: float = 0.1
    seed: int = 7

    def validate(self) -> None:
        if not 0.0 < self.relaxed < self.radius <= 1.0:
            raise InvalidParameterError("need 0 < relaxed < radius <= 1")
        if self.repetitions < 1 or self.trials < 1:
            raise InvalidParameterError("repetitions and trials must be >= 1")
        if not 14 <= self.min_subset_size <= 17:
            raise InvalidParameterError("min_subset_size must be in [14, 17] for the Section 6.2 instance")


@dataclass
class Q3Config:
    """Configuration of the Q3 cost-ratio sweep (Figure 3)."""

    dataset: str = "lastfm"
    num_users: Optional[int] = 600
    radii: Sequence[float] = (0.15, 0.2, 0.25)
    c_values: Sequence[float] = (0.2, 0.25, 1.0 / 3.0, 0.5, 2.0 / 3.0)
    num_queries: int = 25
    min_neighbors: int = 40
    interesting_threshold: float = 0.2
    seed: int = 42

    def validate(self) -> None:
        if self.dataset not in ("lastfm", "movielens"):
            raise InvalidParameterError(f"unknown dataset {self.dataset!r}")
        if not self.radii or not self.c_values:
            raise InvalidParameterError("radii and c_values must be non-empty")
        for c in self.c_values:
            if not 0.0 < c <= 1.0:
                raise InvalidParameterError("c values must be in (0, 1] for similarity thresholds")

"""Configuration dataclasses for the three experiments.

The defaults follow the paper's setup but with smaller repetition counts and
dataset sizes so that the full suite runs on a laptop in minutes; every knob
the paper fixes (radii, the Q2 instance, the c grid of Q3) is exposed so the
full-scale run is a matter of passing larger numbers.

The configs are *declarative consumers* of the spec layer: instead of
hard-coding sampler classes, each config emits
:class:`~repro.spec.SamplerSpec` / :class:`~repro.spec.LSHSpec` /
:class:`~repro.spec.DistanceSpec` values that the experiment runners build
through the registries.  Swapping the LSH family or a sampler for a whole
experiment is a config value, not new wiring code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.exceptions import InvalidParameterError
from repro.spec import DistanceSpec, LSHSpec, SamplerSpec

#: Dataset generators the experiments know how to load.
KNOWN_DATASETS = ("lastfm", "movielens")


# ----------------------------------------------------------------------
# Shared validation helpers (used by all three configs)
# ----------------------------------------------------------------------
def _check_dataset(dataset: str) -> None:
    """The dataset name must be one of the known generators."""
    if dataset not in KNOWN_DATASETS:
        raise InvalidParameterError(
            f"unknown dataset {dataset!r}; known: {', '.join(KNOWN_DATASETS)}"
        )


def _check_similarities(**named: float) -> None:
    """Each named value must be a Jaccard similarity threshold in (0, 1)."""
    for name, value in named.items():
        if not 0.0 < float(value) < 1.0:
            raise InvalidParameterError(
                f"{name} must be a Jaccard similarity in (0, 1), got {value}"
            )


def _check_counts(**named: int) -> None:
    """Each named value must be a repetition/query count >= 1."""
    bad = [name for name, value in named.items() if value < 1]
    if bad:
        raise InvalidParameterError(f"{' and '.join(bad)} must be >= 1")


def _check_seed(seed) -> None:
    """Experiment seeds must be plain ints (they are offset per trial)."""
    if not isinstance(seed, int):
        raise InvalidParameterError(f"seed must be an int, got {seed!r}")


@dataclass
class Q1Config:
    """Configuration of the Q1 fairness comparison (Figure 1).

    Attributes mirror Section 6: 1-bit MinHash LSH, ``K`` chosen for at most
    ``max_far_collisions`` expected collisions at similarity
    ``far_similarity``, ``L`` for ``recall`` at similarity ``radius``,
    queries drawn from "interesting" users (>= ``min_neighbors`` neighbors at
    similarity ``interesting_threshold``).
    """

    dataset: str = "lastfm"
    num_users: Optional[int] = 600
    radius: float = 0.15
    far_similarity: float = 0.1
    max_far_collisions: float = 5.0
    recall: float = 0.99
    num_queries: int = 10
    min_neighbors: int = 40
    interesting_threshold: float = 0.2
    repetitions: int = 800
    seed: int = 42

    def validate(self) -> None:
        _check_dataset(self.dataset)
        _check_similarities(radius=self.radius)
        _check_counts(repetitions=self.repetitions, num_queries=self.num_queries)
        _check_seed(self.seed)

    # ------------------------------------------------------------------
    def distance_spec(self) -> DistanceSpec:
        """The audit measure (Jaccard similarity)."""
        return DistanceSpec("jaccard")

    def lsh_spec(self) -> LSHSpec:
        """The paper's Section 6 family: 1-bit minwise hashing."""
        return LSHSpec("onebit_minhash")

    def sampler_specs(self, num_hashes: int, num_tables: int) -> Dict[str, SamplerSpec]:
        """The audited samplers as specs, keyed by report name.

        ``(K, L)`` come from the parameter rule (it needs ``n``, so the
        runner resolves them first and passes them in); all three samplers
        share them so the audit compares query procedures, not parameters.
        """
        base = {
            "radius": self.radius,
            "far_radius": self.far_similarity,
            "num_hashes": int(num_hashes),
            "num_tables": int(num_tables),
        }
        return {
            # The paper's standard-LSH baseline randomizes the order in which
            # the L tables are visited per query (and notes the bias persists
            # anyway); shuffle_tables=True reproduces that behaviour so the
            # audit sees the full biased output distribution rather than a
            # deterministic point.
            "standard_lsh": SamplerSpec(
                "standard_lsh",
                {**base, "shuffle_tables": True},
                lsh=self.lsh_spec(),
                seed=self.seed,
            ),
            "fair_lsh_collect": SamplerSpec(
                "collect_all", dict(base), lsh=self.lsh_spec(), seed=self.seed
            ),
            "fair_nnis": SamplerSpec(
                "independent", dict(base), lsh=self.lsh_spec(), seed=self.seed
            ),
        }


@dataclass
class Q2Config:
    """Configuration of the Q2 approximate-neighborhood experiment (Figure 2).

    Whether the cluster ``M`` floods the query's buckets is decided by the
    *construction* randomness (the drawn hash functions), not by the query
    randomness, so the empirical sampling probabilities must be averaged over
    many independent constructions (``trials``); the per-construction
    repetition count can stay small.
    """

    min_subset_size: int = 15
    radius: float = 0.9
    relaxed: float = 0.5
    repetitions: int = 100
    trials: int = 24
    recall: float = 0.99
    max_far_collisions: float = 5.0
    far_similarity: float = 0.1
    seed: int = 7

    def validate(self) -> None:
        _check_similarities(relaxed=self.relaxed)
        if not self.relaxed < self.radius <= 1.0:
            raise InvalidParameterError("need 0 < relaxed < radius <= 1")
        _check_counts(repetitions=self.repetitions, trials=self.trials)
        _check_seed(self.seed)
        if not 14 <= self.min_subset_size <= 17:
            raise InvalidParameterError("min_subset_size must be in [14, 17] for the Section 6.2 instance")

    # ------------------------------------------------------------------
    def distance_spec(self) -> DistanceSpec:
        """The instance measure (Jaccard similarity)."""
        return DistanceSpec("jaccard")

    def lsh_spec(self) -> LSHSpec:
        """Full MinHash buckets (rather than the 1-bit reduction).

        A bucket match then means all of the query's minimum elements fall
        inside the candidate set, which makes "X collides" and "the cluster
        collides" nearly mutually exclusive events; the 1-bit parity
        reduction dilutes that exclusivity and with it the phenomenon the
        figure demonstrates.
        """
        return LSHSpec("minhash")

    def sampler_spec(self, num_hashes: int, num_tables: int, trial: int) -> SamplerSpec:
        """The approximate-neighborhood sampler for one construction trial.

        Each trial rebuilds the structure with fresh randomness (that is how
        the paper obtains its quartile error bars), so the seed is offset by
        the trial index.
        """
        return SamplerSpec(
            "approximate",
            {
                "radius": self.radius,
                "far_radius": self.relaxed,
                "num_hashes": int(num_hashes),
                "num_tables": int(num_tables),
            },
            lsh=self.lsh_spec(),
            seed=self.seed + int(trial),
        )


@dataclass
class Q3Config:
    """Configuration of the Q3 cost-ratio sweep (Figure 3)."""

    dataset: str = "lastfm"
    num_users: Optional[int] = 600
    radii: Sequence[float] = (0.15, 0.2, 0.25)
    c_values: Sequence[float] = (0.2, 0.25, 1.0 / 3.0, 0.5, 2.0 / 3.0)
    num_queries: int = 25
    min_neighbors: int = 40
    interesting_threshold: float = 0.2
    seed: int = 42

    def validate(self) -> None:
        _check_dataset(self.dataset)
        if not self.radii or not self.c_values:
            raise InvalidParameterError("radii and c_values must be non-empty")
        _check_similarities(**{f"radii[{i}]": r for i, r in enumerate(self.radii)})
        _check_counts(num_queries=self.num_queries)
        _check_seed(self.seed)
        for c in self.c_values:
            if not 0.0 < c <= 1.0:
                raise InvalidParameterError("c values must be in (0, 1] for similarity thresholds")

    # ------------------------------------------------------------------
    def distance_spec(self) -> DistanceSpec:
        """The ball-count measure (Jaccard similarity)."""
        return DistanceSpec("jaccard")

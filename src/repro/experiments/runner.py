"""Command-line entry point for the experiment reproductions.

Usage::

    python -m repro.experiments.runner q1 [--dataset lastfm|movielens] [--fast]
    python -m repro.experiments.runner q2 [--fast]
    python -m repro.experiments.runner q3 [--dataset lastfm|movielens]
    python -m repro.experiments.runner all [--fast]

``--fast`` shrinks repetition counts and dataset sizes so the whole suite
finishes in well under a minute; without it the defaults are closer to (but
still smaller than) the paper's full-scale runs.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.config import Q1Config, Q2Config, Q3Config
from repro.experiments.q1_fairness import format_q1, run_q1
from repro.experiments.q2_approximate import format_q2, run_q2
from repro.experiments.q3_cost_ratio import format_q3, run_q3


def _q1_config(args: argparse.Namespace) -> Q1Config:
    if args.fast:
        return Q1Config(
            dataset=args.dataset,
            num_users=300,
            num_queries=5,
            repetitions=200,
            radius=args.radius,
        )
    return Q1Config(dataset=args.dataset, radius=args.radius)


def _q2_config(args: argparse.Namespace) -> Q2Config:
    if args.fast:
        # The clustered-neighborhood effect needs the full-size instance and
        # many independent constructions (see Q2Config); fast mode only trims
        # the per-construction repetition count and the number of trials.
        return Q2Config(min_subset_size=15, repetitions=60, trials=14)
    return Q2Config()


def _q3_config(args: argparse.Namespace) -> Q3Config:
    if args.fast:
        return Q3Config(dataset=args.dataset, num_users=300, num_queries=10)
    return Q3Config(dataset=args.dataset)


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the experiments of 'Fair Near Neighbor Search' (PODS 2020)",
    )
    parser.add_argument("experiment", choices=["q1", "q2", "q3", "all"], help="which experiment to run")
    parser.add_argument("--dataset", choices=["lastfm", "movielens"], default="lastfm")
    parser.add_argument("--radius", type=float, default=0.15, help="Jaccard threshold r for Q1")
    parser.add_argument("--fast", action="store_true", help="run a small, quick configuration")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    outputs: List[str] = []
    if args.experiment in ("q1", "all"):
        outputs.append(format_q1(run_q1(_q1_config(args))))
    if args.experiment in ("q2", "all"):
        outputs.append(format_q2(run_q2(_q2_config(args))))
    if args.experiment in ("q3", "all"):
        outputs.append(format_q3(run_q3(_q3_config(args))))
    print("\n\n".join(outputs))
    return 0


if __name__ == "__main__":
    sys.exit(main())

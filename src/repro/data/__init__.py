"""Dataset generators used by examples, tests and the experiment harness.

Because this reproduction runs offline, the MovieLens and Last.FM hetrec-2011
datasets used in the paper's evaluation are replaced by synthetic set-valued
data whose summary statistics (number of users, universe size, set-size
distribution, presence of "interesting" query users with at least 40
neighbors at Jaccard 0.2) are calibrated to the numbers the paper reports.
See DESIGN.md for the substitution argument.
"""

from repro.data.synthetic import (
    gaussian_clusters,
    planted_neighborhood,
    random_unit_vectors,
    planted_inner_product_neighborhood,
)
from repro.data.sets import (
    SetDatasetSpec,
    generate_set_dataset,
    generate_movielens_like,
    generate_lastfm_like,
)
from repro.data.adversarial import clustered_neighborhood_instance, AdversarialInstance
from repro.data.queries import select_interesting_queries
from repro.data.mf import MatrixFactorizationModel, generate_ratings, factorize
from repro.store import DatasetStore, DenseStore, SetStore, make_store

__all__ = [
    "DatasetStore",
    "DenseStore",
    "SetStore",
    "make_store",
    "gaussian_clusters",
    "planted_neighborhood",
    "random_unit_vectors",
    "planted_inner_product_neighborhood",
    "SetDatasetSpec",
    "generate_set_dataset",
    "generate_movielens_like",
    "generate_lastfm_like",
    "clustered_neighborhood_instance",
    "AdversarialInstance",
    "select_interesting_queries",
    "MatrixFactorizationModel",
    "generate_ratings",
    "factorize",
]

"""Synthetic set-valued datasets calibrated to the paper's experiment data.

The paper's Section 6 uses two hetrec-2011 datasets converted to sets:

* **MovieLens** — for each of 2 112 users, the set of movies rated at least 4
  (65 536 unique movies, average set size 178.1, sigma = 187.5);
* **Last.FM** — for each of 1 892 users, the set of their top-20 artists
  (18 739 unique artists, average set size 19.8, sigma = 1.78).

Those files are not available offline, so this module generates synthetic
user-item set data with the same shape: a Zipfian item-popularity curve, a
log-normal (MovieLens) or nearly-constant (Last.FM) user-activity
distribution, and community structure (users in the same community share a
common pool of items) so that "interesting" users with many Jaccard-similar
neighbors exist, exactly as required by the query-selection procedure of the
paper.  The experiments measure per-query output-distribution uniformity and
neighborhood-size ratios, both of which depend only on this local structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class SetDatasetSpec:
    """Specification of a synthetic user-item set dataset.

    Attributes
    ----------
    num_users:
        Number of set-valued points (users).
    num_items:
        Size of the item universe.
    mean_set_size:
        Target average number of items per user.
    set_size_sigma:
        Spread of the set-size distribution.  ``0`` gives constant-size sets
        (the Last.FM style); larger values give a heavy-tailed log-normal
        (the MovieLens style).
    num_communities:
        Number of user communities.  Users of the same community draw most of
        their items from a shared community pool, which creates the dense
        Jaccard neighborhoods the paper's query selection requires.
    community_pool_size:
        Number of items in each community pool.
    within_community_fraction:
        Fraction of a user's items drawn from their community pool (the rest
        are drawn from the global popularity distribution).
    zipf_exponent:
        Exponent of the global item-popularity distribution.
    """

    num_users: int
    num_items: int
    mean_set_size: float
    set_size_sigma: float
    num_communities: int
    community_pool_size: int
    within_community_fraction: float
    zipf_exponent: float = 1.1

    def validate(self) -> None:
        if self.num_users < 1:
            raise InvalidParameterError("num_users must be >= 1")
        if self.num_items < 2:
            raise InvalidParameterError("num_items must be >= 2")
        if self.mean_set_size < 1:
            raise InvalidParameterError("mean_set_size must be >= 1")
        if self.num_communities < 1:
            raise InvalidParameterError("num_communities must be >= 1")
        if not 0.0 <= self.within_community_fraction <= 1.0:
            raise InvalidParameterError("within_community_fraction must be in [0, 1]")
        if self.community_pool_size < 1:
            raise InvalidParameterError("community_pool_size must be >= 1")


#: Specification approximating the MovieLens hetrec-2011 set representation.
MOVIELENS_SPEC = SetDatasetSpec(
    num_users=2112,
    num_items=65536,
    mean_set_size=178.1,
    set_size_sigma=0.85,
    num_communities=40,
    community_pool_size=600,
    within_community_fraction=0.7,
)

#: Specification approximating the Last.FM hetrec-2011 top-20-artist sets.
LASTFM_SPEC = SetDatasetSpec(
    num_users=1892,
    num_items=18739,
    mean_set_size=19.8,
    set_size_sigma=0.0,
    num_communities=60,
    community_pool_size=60,
    within_community_fraction=0.75,
)


def _global_item_weights(num_items: int, exponent: float) -> np.ndarray:
    """Zipfian popularity weights over the item universe."""
    ranks = np.arange(1, num_items + 1, dtype=float)
    weights = ranks**-exponent
    return weights / weights.sum()


def _draw_set_size(spec: SetDatasetSpec, rng: np.random.Generator) -> int:
    """Draw one user's set size according to the spec's distribution."""
    if spec.set_size_sigma <= 0.0:
        # Nearly constant sizes (Last.FM top-20 lists): small +/- jitter.
        size = int(round(spec.mean_set_size + rng.normal(0.0, 1.0)))
    else:
        # Log-normal sizes matching a heavy right tail (MovieLens ratings).
        mu = np.log(spec.mean_set_size) - 0.5 * spec.set_size_sigma**2
        size = int(round(float(rng.lognormal(mu, spec.set_size_sigma))))
    return max(2, min(size, spec.num_items // 2))


def generate_set_dataset(spec: SetDatasetSpec, seed: SeedLike = None) -> List[frozenset]:
    """Generate a synthetic user-item set dataset according to *spec*."""
    spec.validate()
    rng = ensure_rng(seed)
    weights = _global_item_weights(spec.num_items, spec.zipf_exponent)

    # Assign each community a contiguous-looking pool of items drawn by
    # popularity so pools overlap partially (users from different communities
    # can still be similar, as in real rating data).
    community_pools = [
        rng.choice(spec.num_items, size=spec.community_pool_size, replace=False, p=weights)
        for _ in range(spec.num_communities)
    ]
    community_of_user = rng.integers(0, spec.num_communities, size=spec.num_users)

    users: List[frozenset] = []
    for user_index in range(spec.num_users):
        size = _draw_set_size(spec, rng)
        pool = community_pools[community_of_user[user_index]]
        from_pool = int(round(spec.within_community_fraction * size))
        from_pool = min(from_pool, pool.size)
        chosen_pool_items = rng.choice(pool, size=from_pool, replace=False) if from_pool else np.empty(0, dtype=int)
        remaining = size - from_pool
        global_items = (
            rng.choice(spec.num_items, size=remaining, replace=False, p=weights)
            if remaining > 0
            else np.empty(0, dtype=int)
        )
        users.append(frozenset(int(i) for i in np.concatenate([chosen_pool_items, global_items])))
    return users


def generate_movielens_like(
    num_users: Optional[int] = None, seed: SeedLike = None
) -> List[frozenset]:
    """MovieLens-shaped synthetic set data (see module docstring).

    ``num_users`` can be reduced for faster tests and benchmarks; the default
    matches the paper's 2 112 users.
    """
    spec = MOVIELENS_SPEC
    if num_users is not None:
        spec = SetDatasetSpec(
            num_users=num_users,
            num_items=MOVIELENS_SPEC.num_items,
            mean_set_size=MOVIELENS_SPEC.mean_set_size,
            set_size_sigma=MOVIELENS_SPEC.set_size_sigma,
            num_communities=max(2, int(MOVIELENS_SPEC.num_communities * num_users / MOVIELENS_SPEC.num_users)),
            community_pool_size=MOVIELENS_SPEC.community_pool_size,
            within_community_fraction=MOVIELENS_SPEC.within_community_fraction,
        )
    return generate_set_dataset(spec, seed)


def generate_lastfm_like(num_users: Optional[int] = None, seed: SeedLike = None) -> List[frozenset]:
    """Last.FM-shaped synthetic set data (see module docstring)."""
    spec = LASTFM_SPEC
    if num_users is not None:
        spec = SetDatasetSpec(
            num_users=num_users,
            num_items=LASTFM_SPEC.num_items,
            mean_set_size=LASTFM_SPEC.mean_set_size,
            set_size_sigma=LASTFM_SPEC.set_size_sigma,
            num_communities=max(2, int(LASTFM_SPEC.num_communities * num_users / LASTFM_SPEC.num_users)),
            community_pool_size=LASTFM_SPEC.community_pool_size,
            within_community_fraction=LASTFM_SPEC.within_community_fraction,
        )
    return generate_set_dataset(spec, seed)

"""The Q2 adversarial instance from Section 6.2 of the paper.

The instance demonstrates that the *approximate neighborhood* notion of
fairness (sampling uniformly from a set that may include points between
similarity ``cr`` and ``r``) can treat two points at the same distance very
differently:

* universe ``U = {1, ..., 30}``;
* ``X = {16, ..., 30}`` — similarity 0.5 with the query, isolated;
* ``Y = {1, ..., 18}``  — similarity 0.6 with the query, surrounded by the
  cluster ``M``;
* ``Z = {1, ..., 27}``  — similarity 0.9 with the query (the true near
  neighbor at ``r = 0.9``);
* ``M`` — every subset of ``Y`` of size at least 15, excluding ``Y`` itself
  (a tight cluster of points with similarity between 0.5 and 0.56);
* query ``Q = {1, ..., 30}``; thresholds ``r = 0.9``, ``cr = 0.5``.

Because ``Y`` shares buckets with the whole cluster ``M``, an
approximate-neighborhood sampler returns ``X`` far more often than ``Y`` even
though ``Y`` is more similar to the query.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import List

from repro.types import SetPoint


@dataclass(frozen=True)
class AdversarialInstance:
    """The clustered-neighborhood instance with named landmark points.

    Attributes
    ----------
    dataset:
        The full point set (X, Y, Z followed by the cluster ``M``).
    query:
        The query set ``Q = {1, ..., 30}``.
    index_x, index_y, index_z:
        Positions of the named points inside ``dataset``.
    cluster_indices:
        Positions of the cluster points ``M``.
    r, cr:
        The near and relaxed similarity thresholds (0.9 and 0.5).
    """

    dataset: List[SetPoint]
    query: SetPoint
    index_x: int
    index_y: int
    index_z: int
    cluster_indices: List[int]
    r: float = 0.9
    cr: float = 0.5


def clustered_neighborhood_instance(min_subset_size: int = 15) -> AdversarialInstance:
    """Build the Section 6.2 instance.

    ``min_subset_size`` defaults to the paper's 15; the full cluster ``M``
    then has ``sum_{k=15}^{17} C(18, k) = 9996`` points.  Tests may pass a
    larger value (e.g. 16) to get a smaller but structurally identical
    instance.
    """
    x = frozenset(range(16, 31))
    y = frozenset(range(1, 19))
    z = frozenset(range(1, 28))
    query = frozenset(range(1, 31))

    cluster: List[SetPoint] = []
    y_items = sorted(y)
    for size in range(min_subset_size, len(y_items)):
        for subset in combinations(y_items, size):
            cluster.append(frozenset(subset))

    dataset: List[SetPoint] = [x, y, z] + cluster
    return AdversarialInstance(
        dataset=dataset,
        query=query,
        index_x=0,
        index_y=1,
        index_z=2,
        cluster_indices=list(range(3, len(dataset))),
    )

"""Deprecated shim — the columnar stores moved to :mod:`repro.store`.

The :class:`DatasetStore` contract and the in-RAM backends
(:class:`DenseStore` / :class:`SetStore`) grew into a full storage subsystem
with out-of-core and remote tiers; the implementation now lives in
:mod:`repro.store` (``repro.store.base`` for the contract,
``repro.store.inram`` for the resident backends).  This module re-exports
the original names so existing imports keep working, but importing it emits
a :class:`DeprecationWarning`; import from :mod:`repro.store` instead.
"""

import warnings

warnings.warn(
    "repro.data.store is deprecated; import from repro.store instead "
    "(the implementation moved to repro.store.base / repro.store.inram)",
    DeprecationWarning,
    stacklevel=2,
)

from repro.store.base import (
    DatasetStore,
    SharedStoreExport,
    _attach_segment,
    _create_segment,
)
from repro.store.inram import (
    DenseStore,
    SetStore,
    _AttachedDenseStore,
    _AttachedSetStore,
    _dense_rows,
    _pack_sets,
    make_store,
)

__all__ = [
    "DatasetStore",
    "DenseStore",
    "SetStore",
    "SharedStoreExport",
    "make_store",
]

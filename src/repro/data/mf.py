"""A small matrix-factorization substrate for the recommender examples.

The paper motivates fair near-neighbor sampling with recommender systems
based on matrix factorization: recommendations are produced by computing the
inner product of a user factor vector with all item factor vectors.  To make
the examples self-contained we implement (1) a synthetic implicit-feedback
ratings generator with latent user/item communities and (2) a plain
alternating-least-squares factorization — enough to produce realistic factor
vectors for the inner-product samplers without any external data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.rng import SeedLike, ensure_rng


@dataclass
class MatrixFactorizationModel:
    """Learned user and item factor matrices.

    Attributes
    ----------
    user_factors:
        Shape ``(num_users, rank)``.
    item_factors:
        Shape ``(num_items, rank)``.
    """

    user_factors: np.ndarray
    item_factors: np.ndarray

    def predict(self, user: int, item: int) -> float:
        """Predicted affinity of *user* for *item* (their inner product)."""
        return float(self.user_factors[user] @ self.item_factors[item])

    def scores_for_user(self, user: int) -> np.ndarray:
        """Predicted affinity of *user* for every item."""
        return self.item_factors @ self.user_factors[user]


def generate_ratings(
    num_users: int,
    num_items: int,
    rank: int = 8,
    density: float = 0.05,
    noise: float = 0.1,
    seed: SeedLike = None,
) -> np.ndarray:
    """Generate a sparse synthetic ratings matrix with low-rank structure.

    Entries that are unobserved are encoded as ``numpy.nan``.  The observed
    entries follow ``u_i . v_j + noise`` for latent factors drawn from a
    community-structured prior, giving the matrix a genuine low-rank signal
    for :func:`factorize` to recover.
    """
    if num_users < 1 or num_items < 1:
        raise InvalidParameterError("num_users and num_items must be >= 1")
    if not 0.0 < density <= 1.0:
        raise InvalidParameterError(f"density must be in (0, 1], got {density}")
    rng = ensure_rng(seed)
    true_users = rng.normal(0.0, 1.0, size=(num_users, rank)) / np.sqrt(rank)
    true_items = rng.normal(0.0, 1.0, size=(num_items, rank)) / np.sqrt(rank)
    ratings = np.full((num_users, num_items), np.nan)
    mask = rng.random((num_users, num_items)) < density
    noise_matrix = rng.normal(0.0, noise, size=(num_users, num_items))
    full = true_users @ true_items.T + noise_matrix
    ratings[mask] = full[mask]
    return ratings


def factorize(
    ratings: np.ndarray,
    rank: int = 8,
    regularization: float = 0.1,
    iterations: int = 10,
    seed: SeedLike = None,
) -> MatrixFactorizationModel:
    """Alternating least squares on a ratings matrix with ``nan`` for missing.

    This is the textbook implicit ALS loop: alternately solve the ridge
    regression for every user row and every item column against the observed
    entries only.
    """
    ratings = np.asarray(ratings, dtype=float)
    if ratings.ndim != 2:
        raise InvalidParameterError("ratings must be a 2-D matrix")
    if rank < 1:
        raise InvalidParameterError(f"rank must be >= 1, got {rank}")
    if iterations < 1:
        raise InvalidParameterError(f"iterations must be >= 1, got {iterations}")
    num_users, num_items = ratings.shape
    rng = ensure_rng(seed)
    user_factors = rng.normal(0.0, 0.1, size=(num_users, rank))
    item_factors = rng.normal(0.0, 0.1, size=(num_items, rank))
    observed = ~np.isnan(ratings)
    eye = regularization * np.eye(rank)

    for _ in range(iterations):
        for user in range(num_users):
            items = np.flatnonzero(observed[user])
            if items.size == 0:
                continue
            factors = item_factors[items]
            values = ratings[user, items]
            user_factors[user] = np.linalg.solve(factors.T @ factors + eye, factors.T @ values)
        for item in range(num_items):
            users = np.flatnonzero(observed[:, item])
            if users.size == 0:
                continue
            factors = user_factors[users]
            values = ratings[users, item]
            item_factors[item] = np.linalg.solve(factors.T @ factors + eye, factors.T @ values)

    return MatrixFactorizationModel(user_factors=user_factors, item_factors=item_factors)

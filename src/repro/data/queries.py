"""Query selection mirroring the paper's experimental protocol.

Section 6: "For each dataset, we pick 50 queries randomly from a set of
'interesting' users.  A user X is interesting if there exist at least 40
other users with Jaccard similarity at least 0.2 with X."  The same procedure
is implemented here for any measure, so vector experiments can use it too.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.distances.base import Measure
from repro.exceptions import InvalidParameterError
from repro.rng import SeedLike, ensure_rng
from repro.types import Dataset


def select_interesting_queries(
    dataset: Dataset,
    measure: Measure,
    num_queries: int = 50,
    min_neighbors: int = 40,
    threshold: float = 0.2,
    seed: SeedLike = None,
) -> List[int]:
    """Return indices of up to *num_queries* "interesting" dataset points.

    A point is interesting when at least *min_neighbors* **other** points are
    near it at *threshold*.  If fewer interesting points exist than
    requested, all of them are returned (in random order); if none exist, the
    points with the largest neighborhoods are used as a fallback so callers
    always get a non-empty query set.
    """
    n = len(dataset)
    if n == 0:
        raise InvalidParameterError("cannot select queries from an empty dataset")
    if num_queries < 1:
        raise InvalidParameterError(f"num_queries must be >= 1, got {num_queries}")
    rng = ensure_rng(seed)

    neighbor_counts = np.zeros(n, dtype=int)
    for index in range(n):
        values = measure.values_to_query(dataset, dataset[index])
        mask = measure.within_mask(values, threshold)
        # Exclude the point itself from its own neighborhood count.
        neighbor_counts[index] = int(np.count_nonzero(mask)) - (1 if mask[index] else 0)

    interesting = np.flatnonzero(neighbor_counts >= min_neighbors)
    if interesting.size == 0:
        # Fallback: take the points with the largest neighborhoods.
        order = np.argsort(-neighbor_counts, kind="stable")
        interesting = order[: max(num_queries, 1)]
    chosen = rng.permutation(interesting)[:num_queries]
    return [int(i) for i in chosen]

"""Synthetic vector datasets.

These generators produce controlled neighborhood structure so that the
statistical guarantees of the samplers (uniformity over ``B_S(q, r)``,
independence across queries) can be tested against a known ground truth.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.rng import SeedLike, ensure_rng


def random_unit_vectors(n: int, dim: int, seed: SeedLike = None) -> np.ndarray:
    """Draw *n* points uniformly from the unit sphere in ``R^dim``."""
    if n < 1 or dim < 1:
        raise InvalidParameterError(f"n and dim must be >= 1, got n={n}, dim={dim}")
    rng = ensure_rng(seed)
    points = rng.standard_normal((n, dim))
    norms = np.linalg.norm(points, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    return points / norms


def gaussian_clusters(
    n: int,
    dim: int,
    num_clusters: int = 5,
    cluster_std: float = 0.2,
    center_scale: float = 5.0,
    seed: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Mixture-of-Gaussians dataset.

    Returns the points (shape ``(n, dim)``) and the cluster label of every
    point.  Cluster centers are drawn uniformly from a cube of side
    ``2 * center_scale``.
    """
    if num_clusters < 1:
        raise InvalidParameterError(f"num_clusters must be >= 1, got {num_clusters}")
    rng = ensure_rng(seed)
    centers = rng.uniform(-center_scale, center_scale, size=(num_clusters, dim))
    labels = rng.integers(0, num_clusters, size=n)
    points = centers[labels] + rng.normal(0.0, cluster_std, size=(n, dim))
    return points, labels


def planted_neighborhood(
    n_background: int,
    n_neighbors: int,
    dim: int,
    radius: float,
    background_distance: float = 10.0,
    seed: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Plant a known neighborhood around the origin query point.

    Produces a dataset consisting of ``n_neighbors`` points at Euclidean
    distance at most *radius* from the origin plus ``n_background`` points at
    distance at least *background_distance*.  Returns
    ``(points, query, neighbor_indices)`` where ``query`` is the origin.

    The fair samplers should return each planted neighbor with probability
    ``1 / n_neighbors``.
    """
    if n_neighbors < 0 or n_background < 0:
        raise InvalidParameterError("counts must be non-negative")
    if radius <= 0:
        raise InvalidParameterError(f"radius must be positive, got {radius}")
    if background_distance <= radius:
        raise InvalidParameterError("background_distance must exceed radius")
    rng = ensure_rng(seed)
    query = np.zeros(dim)

    directions = rng.standard_normal((n_neighbors, dim))
    norms = np.linalg.norm(directions, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    directions /= norms
    # Radii distributed so neighbors fill the ball rather than its surface.
    radii = radius * rng.uniform(0.1, 1.0, size=(n_neighbors, 1))
    neighbors = directions * radii

    far_directions = rng.standard_normal((n_background, dim))
    far_norms = np.linalg.norm(far_directions, axis=1, keepdims=True)
    far_norms[far_norms == 0.0] = 1.0
    far_directions /= far_norms
    far_radii = background_distance * (1.0 + rng.uniform(0.0, 1.0, size=(n_background, 1)))
    background = far_directions * far_radii

    points = np.vstack([neighbors, background]) if n_neighbors + n_background else np.empty((0, dim))
    neighbor_indices = np.arange(n_neighbors)
    return points, query, neighbor_indices


def planted_inner_product_neighborhood(
    n_background: int,
    n_neighbors: int,
    dim: int,
    alpha: float,
    beta_max: float = 0.2,
    seed: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Plant a neighborhood for inner-product similarity on the unit sphere.

    Returns ``(points, query, neighbor_indices)`` where every planted
    neighbor has inner product at least *alpha* with the unit-norm query and
    every background point has inner product at most *beta_max*.

    Used to exercise the Section 5 filter data structure, which is stated for
    inner product similarity on unit vectors.
    """
    if not -1.0 < alpha < 1.0:
        raise InvalidParameterError(f"alpha must be in (-1, 1), got {alpha}")
    if beta_max >= alpha:
        raise InvalidParameterError("beta_max must be strictly smaller than alpha")
    rng = ensure_rng(seed)
    query = np.zeros(dim)
    query[0] = 1.0

    def _point_with_inner_product(target: float) -> np.ndarray:
        tangent = rng.standard_normal(dim)
        tangent[0] = 0.0
        norm = np.linalg.norm(tangent)
        if norm == 0.0:
            tangent[1] = 1.0
            norm = 1.0
        tangent /= norm
        return target * query + np.sqrt(max(0.0, 1.0 - target**2)) * tangent

    neighbor_sims = rng.uniform(alpha, min(1.0, alpha + 0.5 * (1 - alpha)), size=n_neighbors)
    background_sims = rng.uniform(-0.2, beta_max, size=n_background)
    neighbors = np.array([_point_with_inner_product(s) for s in neighbor_sims]) if n_neighbors else np.empty((0, dim))
    background = np.array([_point_with_inner_product(s) for s in background_sims]) if n_background else np.empty((0, dim))
    points = np.vstack([neighbors, background]) if n_neighbors + n_background else np.empty((0, dim))
    return points, query, np.arange(n_neighbors)

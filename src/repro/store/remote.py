"""The remote backend: batched block fetch through a bounded LRU cache.

A remote store keeps no corpus locally.  It learns the dataset's geometry
from :meth:`BlockClient.meta <repro.store.blocks.BlockClient.meta>` at
construction, then materializes rows on demand by fetching fixed-size
*blocks* (``block_size`` consecutive rows/items) over
:meth:`BlockClient.fetch <repro.store.blocks.BlockClient.fetch>`.  Each
gather batches **all** of its missing blocks into one fetch call — a bucket
probe costs at most one round-trip however many candidate rows it touches.

Fetched blocks land in a bounded :class:`BlockCache` (LRU over
``cache_blocks`` blocks) whose ``hits`` / ``misses`` / ``evictions`` /
``bytes_fetched`` counters are surfaced through
:meth:`DatasetStore.cache_stats <repro.store.base.DatasetStore.cache_stats>`,
mirrored into :class:`~repro.engine.requests.EngineStats`, and reported by
``/v1/stats``.  The counters are deterministic: per gather, every *unique*
block the gather needs scores exactly one hit or one miss, so tests can pin
them perf-guard style.

Mutations behave as on the memmap tier: appended rows are promoted to an
in-RAM overlay store, and released slots are tracked by the point container.
Values are byte-identical to the other backends — raw ``float64`` /
``int64`` bytes travel unmodified end to end.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import BlockFetchError, InvalidParameterError
from repro.store.base import DatasetStore
from repro.store.blocks import BlockClient, block_count
from repro.store.inram import DenseStore, SetStore
from repro.store.memmap import _LazyRowNorms

__all__ = ["BlockCache", "RemoteDenseStore", "RemoteSetStore"]


class BlockCache:
    """Bounded LRU cache of fetched blocks, keyed ``(array_name, block_id)``.

    Lifetime counters (never reset):

    ``hits`` / ``misses``
        Per gather, each unique block the gather needs scores exactly one of
        the two — deterministic for a fixed access pattern.
    ``evictions``
        Blocks dropped to respect ``capacity_blocks``.
    ``bytes_fetched``
        Raw payload bytes pulled over the wire (cache misses plus unblocked
        metadata reads the owning store routes through the cache's account).
    """

    def __init__(self, capacity_blocks: int):
        capacity_blocks = int(capacity_blocks)
        if capacity_blocks < 1:
            raise InvalidParameterError(
                f"cache_blocks must be >= 1, got {capacity_blocks}"
            )
        self.capacity_blocks = capacity_blocks
        self._blocks: "OrderedDict[Tuple[str, int], np.ndarray]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.bytes_fetched = 0

    def __len__(self) -> int:
        return len(self._blocks)

    def get(self, key: Tuple[str, int]) -> Optional[np.ndarray]:
        block = self._blocks.get(key)
        if block is None:
            self.misses += 1
            return None
        self._blocks.move_to_end(key)
        self.hits += 1
        return block

    def put(self, key: Tuple[str, int], block: np.ndarray) -> None:
        self._blocks[key] = block
        self._blocks.move_to_end(key)
        while len(self._blocks) > self.capacity_blocks:
            self._blocks.popitem(last=False)
            self.evictions += 1

    @property
    def nbytes(self) -> int:
        return int(sum(block.nbytes for block in self._blocks.values()))

    def stats(self) -> Dict:
        return {
            "hits": int(self.hits),
            "misses": int(self.misses),
            "evictions": int(self.evictions),
            "bytes_fetched": int(self.bytes_fetched),
            "cached_blocks": len(self._blocks),
            "capacity_blocks": int(self.capacity_blocks),
        }


def _require_array(meta: Dict, name: str, dtype: np.dtype, ndim: int) -> Tuple[int, ...]:
    info = meta.get("arrays", {}).get(name)
    if info is None:
        raise BlockFetchError(
            f"block server publishes no array {name!r} "
            f"(has: {sorted(meta.get('arrays', {}))})",
            name=name,
        )
    if np.dtype(info["dtype"]) != dtype or len(info["shape"]) != ndim:
        raise BlockFetchError(
            f"array {name!r} must be {ndim}-D {dtype}, server publishes "
            f"shape {info['shape']} dtype {info['dtype']}",
            name=name,
        )
    return tuple(int(s) for s in info["shape"])


def _split_payload(
    payload: bytes,
    block_ids: Sequence[int],
    rows: int,
    block_size: int,
    row_nbytes: int,
    name: str,
) -> List[bytes]:
    """Split a multi-block fetch payload back into per-block byte runs.

    Raises :class:`~repro.exceptions.BlockFetchError` when the payload is
    shorter than the block geometry implies (a torn transfer).
    """
    pieces = []
    offset = 0
    for block_id in block_ids:
        start = int(block_id) * block_size
        covered = min(start + block_size, rows) - start
        nbytes = covered * row_nbytes
        piece = payload[offset : offset + nbytes]
        if len(piece) != nbytes:
            raise BlockFetchError(
                f"torn block fetch for {name!r}: block {int(block_id)} needs "
                f"{nbytes} bytes, payload has {len(piece)} left",
                name=name,
            )
        pieces.append(piece)
        offset += nbytes
    if offset != len(payload):
        raise BlockFetchError(
            f"oversized block fetch for {name!r}: {len(payload) - offset} "
            f"trailing bytes beyond the requested blocks",
            name=name,
        )
    return pieces


class _RemoteArray:
    """One server-published array read block-at-a-time through a shared cache."""

    def __init__(
        self,
        client: BlockClient,
        cache: BlockCache,
        name: str,
        rows: int,
        block_size: int,
        dtype: np.dtype,
        row_shape: Tuple[int, ...],
    ):
        self.client = client
        self.cache = cache
        self.name = name
        self.rows = int(rows)
        self.block_size = int(block_size)
        self.dtype = np.dtype(dtype)
        self.row_shape = tuple(int(s) for s in row_shape)
        self.row_elems = int(np.prod(self.row_shape)) if self.row_shape else 1
        self.row_nbytes = self.row_elems * self.dtype.itemsize

    def _block_rows(self, block_id: int) -> int:
        start = int(block_id) * self.block_size
        return min(start + self.block_size, self.rows) - start

    def ensure_blocks(self, block_ids: np.ndarray) -> Dict[int, np.ndarray]:
        """Return the requested blocks, fetching all misses in ONE call."""
        resolved: Dict[int, np.ndarray] = {}
        missing: List[int] = []
        for block_id in block_ids:
            block_id = int(block_id)
            block = self.cache.get((self.name, block_id))
            if block is None:
                missing.append(block_id)
            else:
                resolved[block_id] = block
        if missing:
            payload = self.client.fetch(self.name, missing, self.block_size)
            self.cache.bytes_fetched += len(payload)
            pieces = _split_payload(
                payload, missing, self.rows, self.block_size, self.row_nbytes, self.name
            )
            for block_id, piece in zip(missing, pieces):
                block = np.frombuffer(piece, dtype=self.dtype).reshape(
                    (self._block_rows(block_id),) + self.row_shape
                )
                self.cache.put((self.name, block_id), block)
                resolved[block_id] = block
        return resolved

    def read_rows(self, indices: np.ndarray) -> np.ndarray:
        """Gather rows by index (one fetch round-trip for all cache misses)."""
        indices = np.asarray(indices, dtype=np.intp)
        out = np.empty((indices.size,) + self.row_shape, dtype=self.dtype)
        if indices.size == 0:
            return out
        block_ids = indices // self.block_size
        blocks = self.ensure_blocks(np.unique(block_ids))
        for block_id in np.unique(block_ids):
            block_id = int(block_id)
            mask = block_ids == block_id
            out[mask] = blocks[block_id][indices[mask] - block_id * self.block_size]
        return out

    def read_range(self, start: int, stop: int) -> np.ndarray:
        """Read the contiguous element run ``[start, stop)`` (1-D arrays)."""
        if stop <= start:
            return np.empty((0,) + self.row_shape, dtype=self.dtype)
        first = start // self.block_size
        last = (stop - 1) // self.block_size
        blocks = self.ensure_blocks(np.arange(first, last + 1))
        pieces = []
        for block_id in range(first, last + 1):
            lo = block_id * self.block_size
            block = blocks[block_id]
            pieces.append(block[max(start - lo, 0) : stop - lo])
        return pieces[0] if len(pieces) == 1 else np.concatenate(pieces)


class RemoteDenseStore(DatasetStore):
    """Dense vectors fetched in blocks from a :class:`BlockClient` + overlay."""

    kind = "dense"
    backend = "remote"

    ARRAY = "dataset__dense"

    def __init__(self, client: BlockClient, cache_blocks: int = 64, block_size: int = 256):
        block_size = int(block_size)
        if block_size < 1:
            raise InvalidParameterError(f"block_size must be >= 1, got {block_size}")
        self.client = client
        self.cache = BlockCache(cache_blocks)
        shape = _require_array(client.meta(), self.ARRAY, np.dtype(np.float64), 2)
        self._base_n = shape[0]
        self.dim = shape[1]
        self._array = _RemoteArray(
            client, self.cache, self.ARRAY, self._base_n, block_size,
            np.dtype(np.float64), (self.dim,),
        )
        self.block_size = block_size
        self._overlay = DenseStore(np.empty((0, self.dim), dtype=np.float64))
        self._norms_buf: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return self._base_n + len(self._overlay)

    @property
    def row_norms(self) -> _LazyRowNorms:
        return _LazyRowNorms(self)

    def _norms_at(self, indices) -> np.ndarray:
        indices = np.atleast_1d(np.asarray(indices, dtype=np.intp))
        n = len(self)
        if self._norms_buf is None:
            self._norms_buf = np.full(n, np.nan, dtype=np.float64)
        elif self._norms_buf.shape[0] < n:
            grown = np.full(n, np.nan, dtype=np.float64)
            grown[: self._norms_buf.shape[0]] = self._norms_buf
            self._norms_buf = grown
        missing = np.unique(indices[np.isnan(self._norms_buf[indices])])
        if missing.size:
            rows = self.gather(missing)
            self._norms_buf[missing] = np.sqrt(np.einsum("ij,ij->i", rows, rows))
        return self._norms_buf[indices]

    @property
    def nbytes(self) -> int:
        """Resident bytes: the bounded block cache, overlay, and norm cache."""
        total = self.cache.nbytes + self._overlay.nbytes
        if self._norms_buf is not None:
            total += self._norms_buf.nbytes
        return int(total)

    @property
    def matrix(self) -> np.ndarray:
        """All rows as one matrix (fetches the full corpus; snapshot writer only)."""
        base = self._array.read_rows(np.arange(self._base_n, dtype=np.intp))
        base = np.asarray(base, dtype=np.float64)
        if len(self._overlay) == 0:
            return base
        return np.concatenate([base, self._overlay.matrix])

    def get_point(self, index: int) -> np.ndarray:
        index = int(index)
        if index >= self._base_n:
            return self._overlay.get_point(index - self._base_n)
        return self._array.read_rows(np.asarray([index], dtype=np.intp))[0]

    def gather(self, indices) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.intp)
        if len(self._overlay) == 0:
            return np.asarray(self._array.read_rows(indices), dtype=np.float64)
        out = np.empty((indices.size, self.dim), dtype=np.float64)
        base_mask = indices < self._base_n
        if base_mask.any():
            out[base_mask] = self._array.read_rows(indices[base_mask])
        if not base_mask.all():
            out[~base_mask] = self._overlay.gather(indices[~base_mask] - self._base_n)
        return out

    def append(self, points: Sequence) -> None:
        self._overlay.append(points)

    def cache_stats(self) -> Dict:
        return self.cache.stats()

    def close(self) -> None:
        self.client.close()

    def stats_dict(self) -> Dict:
        payload = super().stats_dict()
        payload["block_size"] = self.block_size
        payload["overlay_rows"] = len(self._overlay)
        return payload


class RemoteSetStore(DatasetStore):
    """CSR set data with items fetched in blocks from a :class:`BlockClient`.

    The row-offset array (``dataset__indptr``, 8 bytes per row) is fetched
    once, whole, at construction — gathers need random access to it and it is
    tiny next to the payload.  The flat ``dataset__items`` payload is blocked
    through the shared LRU cache, one contiguous range read per gathered row.
    """

    kind = "sets"
    backend = "remote"

    INDPTR_ARRAY = "dataset__indptr"
    ITEMS_ARRAY = "dataset__items"

    def __init__(self, client: BlockClient, cache_blocks: int = 64, block_size: int = 256):
        block_size = int(block_size)
        if block_size < 1:
            raise InvalidParameterError(f"block_size must be >= 1, got {block_size}")
        self.client = client
        self.cache = BlockCache(cache_blocks)
        meta = client.meta()
        indptr_shape = _require_array(meta, self.INDPTR_ARRAY, np.dtype(np.int64), 1)
        items_shape = _require_array(meta, self.ITEMS_ARRAY, np.dtype(np.int64), 1)
        # One batched fetch of every indptr block; accounted as bytes_fetched
        # but not cached — the offsets live here for the store's lifetime.
        n_blocks = block_count(indptr_shape[0], block_size)
        payload = client.fetch(self.INDPTR_ARRAY, list(range(n_blocks)), block_size)
        self.cache.bytes_fetched += len(payload)
        expected = indptr_shape[0] * 8
        if len(payload) != expected:
            raise BlockFetchError(
                f"torn indptr fetch: expected {expected} bytes, got {len(payload)}",
                name=self.INDPTR_ARRAY,
            )
        self._indptr = np.frombuffer(payload, dtype=np.int64)
        if self._indptr.shape[0] < 1 or int(self._indptr[-1]) > items_shape[0]:
            raise BlockFetchError(
                f"inconsistent CSR metadata: indptr addresses "
                f"{int(self._indptr[-1]) if self._indptr.shape[0] else '?'} items, "
                f"server publishes {items_shape[0]}",
                name=self.INDPTR_ARRAY,
            )
        self._base_n = int(self._indptr.shape[0] - 1)
        self._items = _RemoteArray(
            client, self.cache, self.ITEMS_ARRAY, items_shape[0], block_size,
            np.dtype(np.int64), (),
        )
        self.block_size = block_size
        self._overlay = SetStore([])
        self._point_cache: Dict[int, frozenset] = {}

    def __len__(self) -> int:
        return self._base_n + len(self._overlay)

    @property
    def indptr(self) -> np.ndarray:
        if len(self._overlay) == 0:
            return self._indptr
        shifted = self._overlay.indptr[1:] + self._indptr[-1]
        return np.concatenate([self._indptr, shifted])

    @property
    def items(self) -> np.ndarray:
        """All items, concatenated (fetches the full payload; snapshot writer only)."""
        base = self._items.read_range(0, int(self._indptr[-1]))
        base = np.asarray(base, dtype=np.int64)
        if len(self._overlay) == 0:
            return base
        return np.concatenate([base, self._overlay.items])

    @property
    def nbytes(self) -> int:
        """Resident bytes: offsets, block cache, overlay, and point cache."""
        total = self._indptr.nbytes + self.cache.nbytes + self._overlay.nbytes
        total += sum(64 + 28 * len(s) for s in self._point_cache.values())
        return int(total)

    def get_point(self, index: int):
        index = int(index)
        if index >= self._base_n:
            return self._overlay.get_point(index - self._base_n)
        cached = self._point_cache.get(index)
        if cached is None:
            row = self._items.read_range(
                int(self._indptr[index]), int(self._indptr[index + 1])
            )
            cached = frozenset(int(item) for item in row)
            self._point_cache[index] = cached
        return cached

    def gather(self, indices):
        indices = np.asarray(indices, dtype=np.intp)
        lengths = np.empty(indices.size, dtype=np.int64)
        if indices.size == 0:
            return lengths, np.empty(0, dtype=np.int64)
        # Prefetch every needed items block in one round-trip (one hit or
        # miss per unique block), then assemble rows from the returned dict —
        # NOT by re-probing the cache, which would inflate the hit counter.
        blocks: Dict[int, np.ndarray] = {}
        base = indices[indices < self._base_n]
        if base.size:
            starts = self._indptr[base]
            ends = self._indptr[base + 1]
            needed = [
                block_id
                for start, end in zip(starts, ends)
                if end > start
                for block_id in range(
                    int(start) // self.block_size, (int(end) - 1) // self.block_size + 1
                )
            ]
            if needed:
                blocks = self._items.ensure_blocks(np.unique(np.asarray(needed)))
        pieces = []
        for position, index in enumerate(indices):
            index = int(index)
            if index < self._base_n:
                row = self._range_from_blocks(
                    blocks, int(self._indptr[index]), int(self._indptr[index + 1])
                )
            else:
                _, row = self._overlay.gather(
                    np.asarray([index - self._base_n], dtype=np.intp)
                )
            lengths[position] = row.shape[0]
            pieces.append(row)
        flat = np.concatenate(pieces) if pieces else np.empty(0, dtype=np.int64)
        return lengths, flat.astype(np.int64, copy=False)

    def _range_from_blocks(
        self, blocks: Dict[int, np.ndarray], start: int, stop: int
    ) -> np.ndarray:
        if stop <= start:
            return np.empty(0, dtype=np.int64)
        pieces = []
        for block_id in range(start // self.block_size, (stop - 1) // self.block_size + 1):
            lo = block_id * self.block_size
            block = blocks[block_id]
            pieces.append(block[max(start - lo, 0) : stop - lo])
        return pieces[0] if len(pieces) == 1 else np.concatenate(pieces)

    def append(self, points: Sequence) -> None:
        self._overlay.append(points)

    def cache_stats(self) -> Dict:
        return self.cache.stats()

    def close(self) -> None:
        self.client.close()

    def stats_dict(self) -> Dict:
        payload = super().stats_dict()
        payload["block_size"] = self.block_size
        payload["overlay_rows"] = len(self._overlay)
        return payload

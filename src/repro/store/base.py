"""The :class:`DatasetStore` contract every storage backend implements.

A store is a columnar snapshot of a dataset, indexable by dataset slot: row
``i`` always corresponds to dataset slot ``i`` — including tombstoned slots,
whose payload is retained (or dropped) but never queried, so memo arrays and
bucket indices stay valid without renumbering.

Three interchangeable backends implement the contract (see
:mod:`repro.store`):

``inram``
    The original columnar stores (:class:`~repro.store.inram.DenseStore` /
    :class:`~repro.store.inram.SetStore`) — everything resident.
``memmap``
    Snapshot-backed lazy stores (:mod:`repro.store.memmap`) that map a v5
    snapshot's raw ``.npy`` payloads and let the OS page vectors in on
    demand; appended rows live in an in-RAM overlay.
``remote``
    Client-side stores (:mod:`repro.store.remote`) that fetch vector blocks
    in batches over the :class:`~repro.store.blocks.BlockClient` protocol
    through a bounded LRU block cache.

The engine layers above are oblivious to the backend: candidate evaluation
routes every batched read through :meth:`DatasetStore.gather`, the serving
capacity model reads :attr:`DatasetStore.nbytes` (backend-aware — out-of-core
stores charge their resident overlay/cache, not the corpus), and the process
pool ships stores across processes via :meth:`DatasetStore.to_shared`
descriptors.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Sequence

from repro.exceptions import InvalidParameterError

__all__ = ["DatasetStore", "SharedStoreExport"]


class DatasetStore(abc.ABC):
    """Columnar snapshot of a dataset, indexable by dataset slot.

    Row ``i`` of a store always corresponds to dataset slot ``i`` — including
    tombstoned slots, whose payload is retained (or zeroed) but never queried,
    so memo arrays and bucket indices stay valid without renumbering.
    """

    #: Layout tag the distance kernels dispatch on (``"dense"`` / ``"sets"``).
    kind: str = "abstract"

    #: Backend tag the serving/capacity layers report (``"inram"`` /
    #: ``"memmap"`` / ``"remote"``).
    backend: str = "inram"

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of stored slots (live and tombstoned)."""

    @abc.abstractmethod
    def get_point(self, index: int):
        """The point at slot *index* in a representation ``Measure.value`` accepts."""

    @abc.abstractmethod
    def append(self, points: Sequence) -> None:
        """Add new slots for *points* at the end of the store."""

    def gather(self, indices):
        """Batched columnar read of the rows at *indices*.

        The one entry point the vectorized candidate-evaluation pipeline
        (:class:`~repro.core.evaluator.CandidateEvaluator` via
        :meth:`Measure.values_at <repro.distances.base.Measure.values_at>`)
        uses, so every measure works unchanged on every backend:

        * ``kind == "dense"`` stores return a ``(len(indices), dim)``
          ``float64`` matrix;
        * ``kind == "sets"`` stores return ``(lengths, flat_items)`` — the
          rows' sizes plus their concatenated sorted items.

        Backends must return byte-identical values for the same slots — the
        contract the cross-backend equivalence suite pins.
        """
        raise InvalidParameterError(f"{type(self).__name__} has no batched gather")

    @property
    def nbytes(self) -> int:
        """Resident bytes of the store's buffers (capacity included).

        The number the serving layer's capacity accounting
        (:meth:`FairNN.capacity <repro.api.FairNN.capacity>` /
        ``GET /v1/capacity``) reports as index memory.  In-RAM stores count
        their allocated buffers — including capacity-doubling headroom and
        tombstoned slots — because that is what the process actually holds.
        Out-of-core backends charge only what is resident *and unevictable*:
        the memmap tier counts its in-RAM overlay and caches (mapped file
        pages are reclaimable), the remote tier counts its bounded block
        cache plus overlay.
        """
        return 0

    def release(self, index: int) -> None:
        """Mark slot *index* tombstoned.

        The slot keeps its position (dataset indices are stable); the payload
        may be dropped.  The base implementation is a no-op because queries
        never evaluate dead slots — subclasses override only when retaining
        the payload costs real memory.  Must be idempotent: the dynamic
        table layer and a store-backed point container may both release the
        same slot during one compaction sweep.
        """

    def cache_stats(self) -> Optional[Dict]:
        """Block-cache counters, for backends that have one (else ``None``).

        Remote stores return ``{"hits", "misses", "evictions",
        "bytes_fetched", "cached_blocks", "capacity_blocks"}`` — the counters
        :class:`~repro.engine.requests.EngineStats` mirrors and ``/v1/stats``
        surfaces.
        """
        return None

    def stats_dict(self) -> Dict:
        """JSON-serializable store identity + occupancy (the ``/v1/stats`` block)."""
        payload = {
            "backend": self.backend,
            "kind": self.kind,
            "rows": int(len(self)),
            "resident_bytes": int(self.nbytes),
        }
        cache = self.cache_stats()
        if cache is not None:
            payload["cache"] = cache
        return payload

    def to_shared(self) -> "SharedStoreExport":
        """Export the store for zero-copy attachment by another process.

        Returns a :class:`SharedStoreExport` whose ``descriptor`` is a small
        picklable dict another process can hand to :meth:`from_shared` to
        attach the same rows without copying the corpus.  In-RAM stores copy
        their columnar buffers into POSIX shared-memory segments; memmap
        stores just ship the snapshot path (the OS page cache *is* the shared
        segment).  The export is a one-time snapshot of the current rows; the
        owner keeps the handle alive for as long as attachers need it and
        must call :meth:`SharedStoreExport.unlink` when done (shared-memory
        segments otherwise outlive the process; path descriptors make it a
        no-op).
        """
        raise InvalidParameterError(
            f"{type(self).__name__} has no shared-memory export"
        )

    @staticmethod
    def from_shared(descriptor: Dict) -> "DatasetStore":
        """Attach the store described by a :meth:`to_shared` descriptor.

        The returned store is **read-only** (``append`` raises) and views the
        exporter's shared-memory segments (or maps the exporter's snapshot
        files) without copying.  Call :meth:`detach` on it to drop the
        mappings; attachers never ``unlink`` — segment lifetime belongs to
        the exporting process.
        """
        kind = descriptor.get("kind")
        if kind == "dense":
            from repro.store.inram import _AttachedDenseStore

            return _AttachedDenseStore(descriptor)
        if kind == "sets":
            from repro.store.inram import _AttachedSetStore

            return _AttachedSetStore(descriptor)
        if kind == "memmap_dense":
            from repro.store.memmap import MemmapDenseStore

            return MemmapDenseStore._attach(descriptor)
        if kind == "memmap_sets":
            from repro.store.memmap import MemmapSetStore

            return MemmapSetStore._attach(descriptor)
        raise InvalidParameterError(f"unknown shared store kind: {kind!r}")

    def detach(self) -> None:
        """Close shared-memory mappings held by an attached store (no-op otherwise)."""


class SharedStoreExport:
    """Owner-side handle of a store exported via :meth:`DatasetStore.to_shared`.

    Holds the shared-memory segments alive and carries the picklable
    ``descriptor`` attachers feed to :meth:`DatasetStore.from_shared`.  The
    exporting process is the segments' owner: it must eventually call
    :meth:`unlink` exactly once (idempotent here) or the segments leak past
    process exit.  Attachers only ever map and close.  Path-based exports
    (the memmap tier) carry no segments, so ``close``/``unlink`` are no-ops.
    """

    def __init__(self, descriptor: Dict, segments: List):
        self.descriptor = descriptor
        self._segments = segments
        self._closed = False
        self._unlinked = False

    def close(self) -> None:
        """Drop this process's mappings (safe to call repeatedly)."""
        if self._closed:
            return
        self._closed = True
        for segment in self._segments:
            try:
                segment.close()
            except OSError:  # pragma: no cover - already torn down
                pass

    def unlink(self) -> None:
        """Destroy the segments (owner only; safe to call repeatedly)."""
        self.close()
        if self._unlinked:
            return
        self._unlinked = True
        for segment in self._segments:
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already removed
                pass


def _create_segment(nbytes: int):
    from multiprocessing import shared_memory

    # Zero-size segments are rejected by the OS; a 1-byte floor keeps empty
    # stores (no rows yet) exportable with the same code path.
    return shared_memory.SharedMemory(create=True, size=max(1, int(nbytes)))


def _attach_segment(name: str):
    from multiprocessing import shared_memory

    # Attaching registers the name with the resource tracker a second time.
    # That is harmless — and must NOT be "fixed" with an unregister — as long
    # as attachers share the exporter's tracker daemon: the tracker's cache
    # is a set, so the re-register is a no-op and the owner's ``unlink()``
    # performs the single removal.  Same-process attachment and fork-started
    # workers (what :mod:`repro.engine.procpool` uses) both satisfy this;
    # spawn-started attachers would need Python 3.13's ``track=False``.
    return shared_memory.SharedMemory(name=name)

"""Declarative storage-backend configuration (:class:`StoreSpec`).

A :class:`StoreSpec` rides on :class:`~repro.spec.EngineSpec` as its
``store`` field, is persisted in snapshot manifests, and round-trips through
JSON — so a snapshot remembers which tier it was serving from and
:meth:`FairNN.recover <repro.api.FairNN.recover>` restores the same tier
without re-stating it.

This module must stay import-light: :mod:`repro.spec` imports it, so it
cannot import :mod:`repro.spec` (or any engine module) back.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, Optional

from repro.exceptions import InvalidParameterError

__all__ = ["StoreSpec", "STORE_BACKENDS"]

#: The storage tiers a dataset can be served from.
STORE_BACKENDS = ("inram", "memmap", "remote")


@dataclasses.dataclass(frozen=True)
class StoreSpec:
    """Which storage tier serves the dataset, and how it is tuned.

    Fields
    ------
    backend:
        ``"inram"`` (everything resident — the default), ``"memmap"``
        (corpus mapped from a v5 snapshot's raw ``.npy`` payloads, paged in
        on demand), or ``"remote"`` (vector blocks fetched in batches from a
        block server through a bounded LRU cache).
    cache_blocks:
        Remote tier only — LRU capacity, in blocks.
    block_size:
        Remote tier only — rows (dense) or items (sets) per fetched block.
    endpoint:
        Remote tier only — the block server's base URL
        (``http://host:port``).  May stay ``None`` when a
        :class:`~repro.store.blocks.BlockClient` is passed programmatically
        to :meth:`FairNN.load <repro.api.FairNN.load>`.
    """

    backend: str = "inram"
    cache_blocks: int = 64
    block_size: int = 256
    endpoint: Optional[str] = None

    def __post_init__(self):
        if self.backend not in STORE_BACKENDS:
            raise InvalidParameterError(
                f"store backend must be one of {STORE_BACKENDS}, got {self.backend!r}"
            )
        if not isinstance(self.cache_blocks, int) or self.cache_blocks < 1:
            raise InvalidParameterError(
                f"cache_blocks must be a positive int, got {self.cache_blocks!r}"
            )
        if not isinstance(self.block_size, int) or self.block_size < 1:
            raise InvalidParameterError(
                f"block_size must be a positive int, got {self.block_size!r}"
            )
        if self.endpoint is not None:
            if self.backend != "remote":
                raise InvalidParameterError(
                    f"endpoint only applies to the remote backend, not {self.backend!r}"
                )
            if not isinstance(self.endpoint, str) or not self.endpoint.startswith(
                ("http://", "https://")
            ):
                raise InvalidParameterError(
                    f"endpoint must be an http(s) URL, got {self.endpoint!r}"
                )

    @classmethod
    def coerce(cls, value) -> "StoreSpec":
        """Normalize user input: a :class:`StoreSpec`, a backend name, or ``None``."""
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls(backend=value)
        if isinstance(value, dict):
            return cls.from_dict(value)
        raise InvalidParameterError(
            f"store must be a StoreSpec, backend name, or dict, got {type(value).__name__}"
        )

    def to_dict(self) -> Dict:
        return {
            "backend": self.backend,
            "cache_blocks": self.cache_blocks,
            "block_size": self.block_size,
            "endpoint": self.endpoint,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "StoreSpec":
        if not isinstance(payload, dict):
            raise InvalidParameterError(
                f"StoreSpec payload must be a dict, got {type(payload).__name__}"
            )
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise InvalidParameterError(
                f"unknown StoreSpec keys: {unknown} (known: {sorted(known)})"
            )
        return cls(**payload)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, payload: str) -> "StoreSpec":
        try:
            data = json.loads(payload)
        except ValueError as error:
            raise InvalidParameterError(f"invalid StoreSpec JSON: {error}") from error
        return cls.from_dict(data)

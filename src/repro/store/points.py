"""A list-like point container served directly by a :class:`DatasetStore`.

The dynamic table layer (:class:`~repro.engine.dynamic.DynamicLSHTables`)
keeps its dataset as a mutable container samplers index into: slot ``i``
holds the point object, or ``None`` once a compaction sweep released a
tombstoned slot.  In-RAM engines use a plain ``list``.  Out-of-core engines
use :class:`StoreBackedPoints` instead: the container holds **no point
objects at all** — ``points[i]`` materializes the row from the backing
memmap/remote store on demand (a lazy ``np.memmap`` row view for dense data,
a cached frozenset for set data), so loading a snapshot never pages the
corpus in.

The container speaks the exact subset of the ``list`` protocol the table
layer uses:

* ``len`` / iteration / ``points[i]`` — reads (``None`` for released slots);
* ``points.extend(batch)`` — the insert path; appends to the backing store,
  so the table layer must not append to the store a second time
  (:func:`points_share_store` is the guard it uses);
* ``points[i] = None`` — the compaction sweep's release; anything else is
  rejected (slots are append-only and tombstone-only, like the list they
  replace).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

from repro.exceptions import InvalidParameterError
from repro.store.base import DatasetStore

__all__ = ["StoreBackedPoints", "points_share_store"]


class StoreBackedPoints:
    """List-protocol facade over a :class:`~repro.store.base.DatasetStore`."""

    __slots__ = ("_store", "_released")

    def __init__(self, store: DatasetStore, released: Iterable[int] = ()):
        self._store = store
        self._released = {int(i) for i in released}

    @property
    def store(self) -> DatasetStore:
        """The backing store rows are materialized from."""
        return self._store

    @property
    def released(self) -> frozenset:
        """Slots whose payload was released (read back as ``None``)."""
        return frozenset(self._released)

    def __len__(self) -> int:
        return len(self._store)

    def _resolve(self, index: int) -> int:
        n = len(self._store)
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError(f"point index {index} out of range [0, {n})")
        return index

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        index = self._resolve(int(index))
        if index in self._released:
            return None
        return self._store.get_point(index)

    def __setitem__(self, index: int, value) -> None:
        if value is not None:
            raise InvalidParameterError(
                "StoreBackedPoints slots are append-only; only tombstoning "
                "(points[i] = None) is supported"
            )
        index = self._resolve(int(index))
        self._released.add(index)
        self._store.release(index)

    def __iter__(self) -> Iterator:
        for index in range(len(self)):
            yield self[index]

    def __contains__(self, point) -> bool:
        return any(p is point or _points_equal(p, point) for p in self)

    def extend(self, points: Sequence) -> None:
        """Append new slots (the insert path); rows land in the backing store."""
        self._store.append(list(points))

    def append(self, point) -> None:
        self.extend([point])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StoreBackedPoints({type(self._store).__name__}, rows={len(self)}, "
            f"released={len(self._released)})"
        )


def points_share_store(points, store: Optional[DatasetStore]) -> bool:
    """Whether *points* is a container already backed by *store*.

    The dynamic table layer appends an insert batch to both its point
    container and its columnar store; when the container *is* store-backed
    those are the same object and the second append would duplicate rows.
    """
    return store is not None and getattr(points, "store", None) is store


def _points_equal(a, b) -> bool:
    try:
        result = a == b
    except Exception:  # pragma: no cover - exotic point types
        return False
    return bool(getattr(result, "all", lambda: result)())

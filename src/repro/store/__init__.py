"""Pluggable dataset storage backends (``repro.store``).

Every engine reads its dataset through the one
:class:`~repro.store.base.DatasetStore` contract; three interchangeable
backends implement it:

``inram``
    The original columnar stores (:class:`DenseStore` / :class:`SetStore`)
    — everything resident.  Built by :func:`make_store`.
``memmap``
    Out-of-core stores (:class:`MemmapDenseStore` / :class:`MemmapSetStore`)
    mapping a format-v5 snapshot's raw ``.npy`` payloads; the OS pages
    vectors in on demand and cold start touches only file headers.
``remote``
    Client-side stores (:class:`RemoteDenseStore` / :class:`RemoteSetStore`)
    fetching vector blocks in batches over the :class:`BlockClient`
    protocol through a bounded LRU :class:`BlockCache`.

Select a tier declaratively with :class:`StoreSpec` — via
``FairNN.serve(..., store=...)``, ``FairNN.load(..., store=...)``, or the
``store`` field of :class:`~repro.spec.EngineSpec`.
"""

from repro.store.base import DatasetStore, SharedStoreExport
from repro.store.blocks import BlockClient, HTTPBlockClient, LocalBlockClient, block_count
from repro.store.inram import DenseStore, SetStore, make_store
from repro.store.memmap import MemmapDenseStore, MemmapSetStore, open_npy_mapped
from repro.store.points import StoreBackedPoints, points_share_store
from repro.store.remote import BlockCache, RemoteDenseStore, RemoteSetStore
from repro.store.spec import STORE_BACKENDS, StoreSpec

__all__ = [
    "BlockCache",
    "BlockClient",
    "DatasetStore",
    "DenseStore",
    "HTTPBlockClient",
    "LocalBlockClient",
    "MemmapDenseStore",
    "MemmapSetStore",
    "RemoteDenseStore",
    "RemoteSetStore",
    "STORE_BACKENDS",
    "SetStore",
    "SharedStoreExport",
    "StoreBackedPoints",
    "StoreSpec",
    "block_count",
    "make_store",
    "open_npy_mapped",
    "points_share_store",
]

"""The in-RAM columnar backend: everything resident, zero read latency.

These are the original concrete stores the vectorized candidate-evaluation
pipeline was built on (relocated here from ``repro.data.store``, which
re-exports them compatibly under a deprecation warning):

* **dense vector data** lives in a single C-contiguous ``float64`` matrix
  (:class:`DenseStore`), so a batch of candidate rows is one fancy-indexing
  gather away from a distance kernel;
* **set-valued data** is packed CSR-style (:class:`SetStore`): one flat
  ``int64`` item array plus an ``indptr`` offset array, items sorted within
  each row, so set intersections reduce to ``searchsorted`` membership tests
  and segment sums.

Both stores are built once — at ``fit``/``attach`` time, or lazily on the
first batched evaluation — and support dynamic growth (``append``) and
tombstoning (``release``) so :class:`~repro.engine.dynamic.DynamicLSHTables`
can keep one shared store in sync with its mutable point container instead of
forcing a rebuild per mutation batch.

Datasets that fit neither layout (ragged arrays, exotic objects) get no
store: :func:`make_store` returns ``None`` and the evaluation layer falls
back to the per-pair scalar loop, which remains the semantic reference.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.store.base import (
    DatasetStore,
    SharedStoreExport,
    _attach_segment,
    _create_segment,
)

__all__ = ["DenseStore", "SetStore", "make_store"]


class DenseStore(DatasetStore):
    """Dense vector data as one contiguous ``float64`` matrix.

    The matrix lives in a capacity-doubled buffer so a stream of appends is
    amortized O(1) per row; :attr:`matrix` is a view of the live prefix.
    Per-row l2 norms (used by the cosine/angular kernels) are computed with
    the same ``einsum`` recipe as the scalar measure and cached incrementally.
    """

    kind = "dense"

    def __init__(self, rows: np.ndarray):
        rows = np.ascontiguousarray(rows, dtype=np.float64)
        if rows.ndim != 2:
            raise InvalidParameterError(f"DenseStore requires 2-D data, got shape {rows.shape}")
        self._buf = rows
        self._n = rows.shape[0]
        self.dim = rows.shape[1]
        self._norms_buf: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return self._n

    @property
    def matrix(self) -> np.ndarray:
        """The ``(n, dim)`` float64 matrix of all stored rows."""
        return self._buf[: self._n]

    @property
    def row_norms(self) -> np.ndarray:
        """Per-row l2 norms, ``sqrt(einsum('ij,ij->i', M, M))`` (cached).

        Maintained incrementally: after an append only the new rows' norms
        are computed (each row's norm is independent, so the block boundary
        cannot change the values).
        """
        if self._norms_buf is None:
            rows = self.matrix
            self._norms_buf = np.sqrt(np.einsum("ij,ij->i", rows, rows))
        elif self._norms_buf.shape[0] < self._n:
            fresh = self._buf[self._norms_buf.shape[0] : self._n]
            self._norms_buf = np.concatenate(
                [self._norms_buf, np.sqrt(np.einsum("ij,ij->i", fresh, fresh))]
            )
        return self._norms_buf[: self._n]

    @property
    def nbytes(self) -> int:
        total = self._buf.nbytes
        if self._norms_buf is not None:
            total += self._norms_buf.nbytes
        return int(total)

    def get_point(self, index: int) -> np.ndarray:
        return self._buf[index]

    def gather(self, indices: np.ndarray) -> np.ndarray:
        """The rows at *indices* as a dense ``(len(indices), dim)`` matrix."""
        return self._buf[indices]

    def append(self, points: Sequence) -> None:
        rows = _dense_rows(points, self.dim)
        if rows.size == 0:
            return
        needed = self._n + rows.shape[0]
        if needed > self._buf.shape[0]:
            capacity = max(8, 2 * self._buf.shape[0], needed)
            grown = np.zeros((capacity, self.dim), dtype=np.float64)
            grown[: self._n] = self._buf[: self._n]
            self._buf = grown
        self._buf[self._n : needed] = rows
        self._n = needed
        # Norms for the appended rows are filled lazily on next access.

    def to_shared(self) -> "SharedStoreExport":
        matrix = self.matrix
        segment = _create_segment(matrix.nbytes)
        if matrix.size:
            view = np.ndarray(matrix.shape, dtype=np.float64, buffer=segment.buf)
            view[...] = matrix
        descriptor = {
            "kind": "dense",
            "segment": segment.name,
            "rows": int(matrix.shape[0]),
            "dim": int(matrix.shape[1]),
        }
        return SharedStoreExport(descriptor, [segment])


class SetStore(DatasetStore):
    """Set-valued data packed CSR-style: flat sorted item rows + offsets."""

    kind = "sets"

    def __init__(self, points: Sequence):
        points = list(points)
        self._points: List = points
        self._indptr, self._items = _pack_sets(points)
        self._n = len(points)

    @classmethod
    def _from_csr(cls, points: List, indptr: np.ndarray, items: np.ndarray) -> "SetStore":
        """Adopt pre-packed CSR buffers (v5 snapshot load) without repacking."""
        store = cls.__new__(cls)
        store._points = points
        store._indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        store._items = np.ascontiguousarray(items, dtype=np.int64)
        store._n = len(points)
        return store

    def __len__(self) -> int:
        return self._n

    @property
    def indptr(self) -> np.ndarray:
        """Row offsets into :attr:`items` (``int64``, length ``n + 1``)."""
        return self._indptr[: self._n + 1]

    @property
    def items(self) -> np.ndarray:
        """All rows' items, concatenated, sorted within each row."""
        return self._items[: self._indptr[self._n]]

    @property
    def nbytes(self) -> int:
        return int(self._indptr.nbytes + self._items.nbytes)

    def get_point(self, index: int):
        return self._points[index]

    def gather(self, indices: np.ndarray):
        """``(lengths, flat_items)`` of the rows at *indices* (concatenated)."""
        starts = self._indptr[indices]
        ends = self._indptr[indices + 1]
        lengths = ends - starts
        total = int(lengths.sum())
        if total == 0:
            return lengths, np.empty(0, dtype=np.int64)
        offsets = np.concatenate(([0], np.cumsum(lengths)[:-1]))
        positions = np.repeat(starts - offsets, lengths) + np.arange(total)
        return lengths, self._items[positions]

    def append(self, points: Sequence) -> None:
        points = list(points)
        if not points:
            return
        indptr, items = _pack_sets(points)
        self._items = np.concatenate([self._items, items])
        self._indptr = np.concatenate([self._indptr, self._indptr[-1] + indptr[1:]])
        self._points.extend(points)
        self._n += len(points)

    def to_shared(self) -> "SharedStoreExport":
        indptr = self.indptr
        items = self.items
        indptr_segment = _create_segment(indptr.nbytes)
        np.ndarray(indptr.shape, dtype=np.int64, buffer=indptr_segment.buf)[...] = indptr
        items_segment = _create_segment(items.nbytes)
        if items.size:
            np.ndarray(items.shape, dtype=np.int64, buffer=items_segment.buf)[...] = items
        descriptor = {
            "kind": "sets",
            "indptr_segment": indptr_segment.name,
            "items_segment": items_segment.name,
            "rows": int(self._n),
            "items_len": int(items.shape[0]),
        }
        return SharedStoreExport(descriptor, [indptr_segment, items_segment])


class _AttachedDenseStore(DenseStore):
    """Read-only :class:`DenseStore` viewing another process's shared matrix."""

    def __init__(self, descriptor: Dict):
        segment = _attach_segment(descriptor["segment"])
        rows, dim = int(descriptor["rows"]), int(descriptor["dim"])
        buf = np.ndarray((rows, dim), dtype=np.float64, buffer=segment.buf)
        buf.flags.writeable = False
        self._buf = buf
        self._n = rows
        self.dim = dim
        self._norms_buf = None
        self._segments = [segment]

    def append(self, points: Sequence) -> None:
        raise InvalidParameterError("shared-memory attached stores are read-only")

    def detach(self) -> None:
        for segment in self._segments:
            try:
                segment.close()
            except OSError:  # pragma: no cover
                pass
        self._segments = []


class _AttachedSetStore(SetStore):
    """Read-only :class:`SetStore` viewing another process's CSR buffers.

    Point objects are not shipped; :meth:`get_point` reconstructs each row's
    frozenset lazily from the CSR slice and caches it.  Tombstoned slots come
    back as empty frozensets — callers that track liveness (the dynamic
    tables' alive mask) never ask for them.
    """

    def __init__(self, descriptor: Dict):
        indptr_segment = _attach_segment(descriptor["indptr_segment"])
        items_segment = _attach_segment(descriptor["items_segment"])
        rows = int(descriptor["rows"])
        items_len = int(descriptor["items_len"])
        indptr = np.ndarray((rows + 1,), dtype=np.int64, buffer=indptr_segment.buf)
        items = np.ndarray((items_len,), dtype=np.int64, buffer=items_segment.buf)
        indptr.flags.writeable = False
        items.flags.writeable = False
        self._indptr = indptr
        self._items = items
        self._n = rows
        self._points = [None] * rows
        self._segments = [indptr_segment, items_segment]

    def get_point(self, index: int):
        cached = self._points[index]
        if cached is None:
            start = int(self._indptr[index])
            end = int(self._indptr[index + 1])
            cached = frozenset(int(item) for item in self._items[start:end])
            self._points[index] = cached
        return cached

    def append(self, points: Sequence) -> None:
        raise InvalidParameterError("shared-memory attached stores are read-only")

    def detach(self) -> None:
        for segment in self._segments:
            try:
                segment.close()
            except OSError:  # pragma: no cover
                pass
        self._segments = []


def _dense_rows(points: Sequence, dim: Optional[int] = None) -> np.ndarray:
    """Coerce a sequence of vectors (``None`` = tombstoned slot) to float64 rows."""
    if isinstance(points, np.ndarray) and points.ndim == 2:
        rows = np.ascontiguousarray(points, dtype=np.float64)
    else:
        points = list(points)
        if dim is None:
            probe = next((p for p in points if p is not None), None)
            if probe is None:
                raise InvalidParameterError("cannot infer a row shape from all-dead slots")
            dim = len(np.asarray(probe).reshape(-1))
        rows = np.zeros((len(points), dim), dtype=np.float64)
        for position, point in enumerate(points):
            if point is None:
                continue  # released slot: keep a zero placeholder row
            rows[position] = np.asarray(point, dtype=np.float64).reshape(-1)
    if dim is not None and rows.shape[1] != dim:
        raise InvalidParameterError(
            f"appended rows have dimension {rows.shape[1]}, store holds {dim}"
        )
    return rows


def _pack_sets(points: Sequence) -> tuple:
    """CSR-pack set points (``None`` = tombstoned slot) into (indptr, items)."""
    lengths = np.asarray(
        [0 if p is None else len(p) for p in points], dtype=np.int64
    )
    indptr = np.concatenate(([0], np.cumsum(lengths)))
    total = int(indptr[-1])
    items = np.empty(total, dtype=np.int64)
    cursor = 0
    for point in points:
        if not point:
            continue
        if not isinstance(next(iter(point)), (int, np.integer)):
            # Non-integer items (strings, floats) have no exact int64
            # packing — np.fromiter would raise for strings but silently
            # truncate floats.  Refuse; callers fall back to the scalar path.
            raise TypeError(f"set items must be integers to pack, got {point!r}")
        size = len(point)
        items[cursor : cursor + size] = np.fromiter(point, dtype=np.int64, count=size)
        cursor += size
    if total:
        # Sort within rows in one vectorized pass: stable sort by (row, item).
        row_ids = np.repeat(np.arange(len(points), dtype=np.int64), lengths)
        order = np.lexsort((items, row_ids))
        items = items[order]
    return indptr, items


def make_store(dataset) -> Optional[DatasetStore]:
    """Build (or adopt) the columnar store matching *dataset*'s representation.

    Returns ``None`` when no columnar layout applies (the evaluation layer
    then falls back to the scalar per-pair loop).  ``None`` entries inside
    *dataset* are treated as tombstoned slots and stored as placeholders.
    A :class:`~repro.store.points.StoreBackedPoints` container — the point
    container of memmap/remote-backed engines — contributes its own backing
    store directly, whatever the backend, instead of being repacked in RAM.
    """
    from repro.store.points import StoreBackedPoints

    if isinstance(dataset, StoreBackedPoints):
        return dataset.store
    if isinstance(dataset, np.ndarray):
        if dataset.ndim == 2 and dataset.dtype.kind in "iufb":
            return DenseStore(dataset)
        return None
    try:
        n = len(dataset)
    except TypeError:
        return None
    if n == 0:
        return None
    probe = next((p for p in dataset if p is not None), None)
    if probe is None:
        return None
    if isinstance(probe, (set, frozenset)):
        if all(p is None or isinstance(p, (set, frozenset)) for p in dataset):
            try:
                return SetStore(dataset)
            except (ValueError, TypeError, OverflowError):
                # Non-integer items (e.g. sets of strings) have no CSR
                # packing; the scalar evaluation path handles them.
                return None
        return None
    if isinstance(probe, np.ndarray) and probe.ndim == 1 and probe.dtype.kind in "iufb":
        dim = probe.shape[0]
        if all(
            p is None
            or (isinstance(p, np.ndarray) and p.ndim == 1 and p.shape[0] == dim and p.dtype.kind in "iufb")
            for p in dataset
        ):
            return DenseStore(_dense_rows(dataset, dim))
        return None
    return None

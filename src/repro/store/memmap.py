"""The out-of-core memmap backend: map a v5 snapshot, page vectors on demand.

A format-v5 snapshot (see :mod:`repro.engine.snapshot`) writes its dataset
payload as raw uncompressed ``.npy`` files — ``arrays/dataset__dense.npy``
for vector data, ``arrays/dataset__indptr.npy`` + ``arrays/dataset__items.npy``
for set data.  The stores here open those files with ``mmap_mode="r"``
instead of reading them: construction touches only the ``.npy`` headers, a
server process reaches its first query in milliseconds, and the OS pages
vector rows in on first access (and back out under memory pressure — mapped
file pages are clean and reclaimable, which is why :attr:`nbytes` charges
only the in-RAM overlay and caches).

Mutations still work: appended rows are promoted to an in-RAM **overlay**
store (the mapped base file is immutable), gathers stitch base and overlay
rows transparently, and tombstoned slots are tracked by the
:class:`~repro.store.points.StoreBackedPoints` container exactly as for the
in-RAM backend.  Values are byte-identical to the in-RAM stores for the same
slots — ``float64`` rows and sorted ``int64`` CSR rows read back exactly as
written.

Process-pool serving ships memmap stores by *path*, not by copy:
:meth:`~MemmapDenseStore.to_shared` returns a descriptor naming the snapshot
files and shard workers re-map them, so the OS page cache is the shared
segment and no shared-memory copy of the corpus is made.
"""

from __future__ import annotations

import pathlib
from typing import Dict, Optional, Sequence, Union

import numpy as np

from repro.exceptions import InvalidParameterError, SnapshotCorruptError
from repro.store.base import DatasetStore, SharedStoreExport
from repro.store.inram import DenseStore, SetStore

__all__ = ["MemmapDenseStore", "MemmapSetStore", "open_npy_mapped"]


def open_npy_mapped(path: Union[str, pathlib.Path]) -> np.ndarray:
    """``np.load(path, mmap_mode="r")`` with typed corruption errors.

    A missing or truncated ``.npy`` raises
    :class:`~repro.exceptions.SnapshotCorruptError` carrying ``path`` — the
    same contract the snapshot loader gives damaged ``arrays.npz`` files in
    the zipped formats.
    """
    path = pathlib.Path(path)
    try:
        return np.load(path, mmap_mode="r", allow_pickle=False)
    except (OSError, ValueError, EOFError) as error:
        raise SnapshotCorruptError(
            f"cannot map snapshot array {path}: {type(error).__name__}: {error}",
            path=path,
        ) from error


class _LazyRowNorms:
    """``store.row_norms`` stand-in computing per-row l2 norms on demand.

    The in-RAM store precomputes all norms in one pass; doing that here would
    page the whole corpus in and defeat the lazy tier.  Each row's norm is
    independent (``sqrt(einsum('ij,ij->i', M, M))`` row by row), so computing
    only the requested rows yields bitwise-identical values.  Computed norms
    are cached in a NaN-sentinel buffer.
    """

    __slots__ = ("_store",)

    def __init__(self, store: "MemmapDenseStore"):
        self._store = store

    def __getitem__(self, indices) -> np.ndarray:
        return self._store._norms_at(indices)

    def __len__(self) -> int:
        return len(self._store)


class MemmapDenseStore(DatasetStore):
    """Dense vectors mapped read-only from a snapshot ``.npy`` + in-RAM overlay."""

    kind = "dense"
    backend = "memmap"

    def __init__(self, path: Union[str, pathlib.Path]):
        self._path = str(path)
        base = open_npy_mapped(path)
        if base.ndim != 2 or base.dtype != np.float64:
            raise SnapshotCorruptError(
                f"dense snapshot payload must be a 2-D float64 array, got "
                f"shape {base.shape} dtype {base.dtype}",
                path=self._path,
            )
        self._base = base
        self._base_n = int(base.shape[0])
        self.dim = int(base.shape[1])
        # Appended rows are promoted to this in-RAM overlay (the mapped base
        # is immutable); gathers stitch the two address ranges transparently.
        self._overlay = DenseStore(np.empty((0, self.dim), dtype=np.float64))
        self._norms_buf: Optional[np.ndarray] = None
        self._read_only = False

    # -- classmethods ---------------------------------------------------
    @classmethod
    def _attach(cls, descriptor: Dict) -> "MemmapDenseStore":
        """Re-map the exporter's snapshot file (procpool worker side)."""
        store = cls(descriptor["path"])
        if store._base_n != int(descriptor["rows"]) or store.dim != int(descriptor["dim"]):
            raise InvalidParameterError(
                f"mapped store shape ({store._base_n}, {store.dim}) does not match "
                f"descriptor ({descriptor['rows']}, {descriptor['dim']})"
            )
        overlay = descriptor.get("overlay")
        if overlay is not None and len(overlay):
            store._overlay.append(np.asarray(overlay, dtype=np.float64))
        store._read_only = True
        return store

    # -- DatasetStore ---------------------------------------------------
    def __len__(self) -> int:
        return self._base_n + len(self._overlay)

    @property
    def path(self) -> str:
        """The mapped base ``.npy`` file."""
        return self._path

    @property
    def matrix(self) -> np.ndarray:
        """All rows as one in-RAM matrix (materializes the corpus; used by
        the snapshot writer and shared-memory fallbacks, not the hot path)."""
        if len(self._overlay) == 0:
            return np.asarray(self._base)
        return np.concatenate([np.asarray(self._base), self._overlay.matrix])

    @property
    def row_norms(self) -> _LazyRowNorms:
        return _LazyRowNorms(self)

    def _norms_at(self, indices) -> np.ndarray:
        indices = np.atleast_1d(np.asarray(indices, dtype=np.intp))
        n = len(self)
        if self._norms_buf is None:
            self._norms_buf = np.full(n, np.nan, dtype=np.float64)
        elif self._norms_buf.shape[0] < n:
            grown = np.full(n, np.nan, dtype=np.float64)
            grown[: self._norms_buf.shape[0]] = self._norms_buf
            self._norms_buf = grown
        missing = np.unique(indices[np.isnan(self._norms_buf[indices])])
        if missing.size:
            rows = self.gather(missing)
            self._norms_buf[missing] = np.sqrt(np.einsum("ij,ij->i", rows, rows))
        return self._norms_buf[indices]

    @property
    def nbytes(self) -> int:
        """Resident unevictable bytes: overlay + norm cache, **not** the
        mapped base file (its pages are clean and reclaimable)."""
        total = self._overlay.nbytes
        if self._norms_buf is not None:
            total += self._norms_buf.nbytes
        return int(total)

    def get_point(self, index: int) -> np.ndarray:
        if index < self._base_n:
            # A memmap row view: no page is touched until the values are read.
            return self._base[index]
        return self._overlay.get_point(index - self._base_n)

    def gather(self, indices) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.intp)
        if len(self._overlay) == 0:
            return np.asarray(self._base[indices], dtype=np.float64)
        out = np.empty((indices.size, self.dim), dtype=np.float64)
        base_mask = indices < self._base_n
        if base_mask.any():
            out[base_mask] = self._base[indices[base_mask]]
        if not base_mask.all():
            out[~base_mask] = self._overlay.gather(indices[~base_mask] - self._base_n)
        return out

    def append(self, points: Sequence) -> None:
        if self._read_only:
            raise InvalidParameterError("attached memmap stores are read-only")
        self._overlay.append(points)

    def to_shared(self) -> SharedStoreExport:
        overlay = self._overlay.matrix
        descriptor = {
            "kind": "memmap_dense",
            "path": self._path,
            "rows": self._base_n,
            "dim": self.dim,
            # Overlay rows (post-load churn) are tiny relative to the mapped
            # corpus; they ride along by value so attachers see every slot.
            "overlay": np.array(overlay) if len(overlay) else None,
        }
        return SharedStoreExport(descriptor, [])

    def detach(self) -> None:
        base = self._base
        self._base = np.empty((0, self.dim), dtype=np.float64)
        mm = getattr(base, "_mmap", None)
        if mm is not None:
            try:
                mm.close()
            except (OSError, ValueError, BufferError):  # pragma: no cover
                pass

    def stats_dict(self) -> Dict:
        payload = super().stats_dict()
        payload["path"] = self._path
        payload["overlay_rows"] = len(self._overlay)
        return payload


class MemmapSetStore(DatasetStore):
    """CSR set data with items mapped read-only from a snapshot + overlay.

    The small ``indptr`` offsets array (8 bytes per row) is read eagerly —
    gathers need random access to it anyway — while the flat ``items``
    payload stays mapped and pages in per gathered row.  Point objects
    (frozensets, for hashing and the scalar evaluation path) are
    reconstructed lazily from CSR slices and cached.
    """

    kind = "sets"
    backend = "memmap"

    def __init__(
        self,
        indptr_path: Union[str, pathlib.Path],
        items_path: Union[str, pathlib.Path],
    ):
        self._indptr_path = str(indptr_path)
        self._items_path = str(items_path)
        indptr = open_npy_mapped(indptr_path)
        items = open_npy_mapped(items_path)
        if indptr.ndim != 1 or indptr.dtype != np.int64 or indptr.shape[0] < 1:
            raise SnapshotCorruptError(
                f"set snapshot indptr must be a 1-D int64 array, got shape "
                f"{indptr.shape} dtype {indptr.dtype}",
                path=self._indptr_path,
            )
        if items.ndim != 1 or items.dtype != np.int64:
            raise SnapshotCorruptError(
                f"set snapshot items must be a 1-D int64 array, got shape "
                f"{items.shape} dtype {items.dtype}",
                path=self._items_path,
            )
        # Materialize the offsets (8 bytes/row); leave the payload mapped.
        self._indptr = np.array(indptr, dtype=np.int64)
        if int(self._indptr[-1]) > items.shape[0]:
            raise SnapshotCorruptError(
                f"set snapshot items file holds {items.shape[0]} items but "
                f"indptr addresses {int(self._indptr[-1])} — truncated payload",
                path=self._items_path,
            )
        self._base_items = items
        self._base_n = int(self._indptr.shape[0] - 1)
        self._overlay = SetStore([])
        self._point_cache: Dict[int, frozenset] = {}
        self._read_only = False

    @classmethod
    def _attach(cls, descriptor: Dict) -> "MemmapSetStore":
        store = cls(descriptor["indptr_path"], descriptor["items_path"])
        if store._base_n != int(descriptor["rows"]):
            raise InvalidParameterError(
                f"mapped set store holds {store._base_n} rows, descriptor says "
                f"{descriptor['rows']}"
            )
        overlay = descriptor.get("overlay")
        if overlay:
            store._overlay.append([frozenset(row) for row in overlay])
        store._read_only = True
        return store

    def __len__(self) -> int:
        return self._base_n + len(self._overlay)

    @property
    def indptr(self) -> np.ndarray:
        """Combined row offsets (materializes overlay offsets; base is in RAM)."""
        if len(self._overlay) == 0:
            return self._indptr
        shifted = self._overlay.indptr[1:] + self._indptr[-1]
        return np.concatenate([self._indptr, shifted])

    @property
    def items(self) -> np.ndarray:
        """All items, concatenated (materializes the mapped payload)."""
        base = np.asarray(self._base_items[: int(self._indptr[-1])])
        if len(self._overlay) == 0:
            return base
        return np.concatenate([base, self._overlay.items])

    @property
    def nbytes(self) -> int:
        """Resident unevictable bytes: offsets, overlay and point cache."""
        total = self._indptr.nbytes + self._overlay.nbytes
        # Cached frozensets hold ~64 bytes + 28/item; count the items.
        total += sum(64 + 28 * len(s) for s in self._point_cache.values())
        return int(total)

    def get_point(self, index: int):
        index = int(index)
        if index >= self._base_n:
            return self._overlay.get_point(index - self._base_n)
        cached = self._point_cache.get(index)
        if cached is None:
            start = int(self._indptr[index])
            end = int(self._indptr[index + 1])
            cached = frozenset(int(item) for item in self._base_items[start:end])
            self._point_cache[index] = cached
        return cached

    def gather(self, indices):
        indices = np.asarray(indices, dtype=np.intp)
        if len(self._overlay) == 0 or (
            indices.size and int(indices.max()) < self._base_n
        ):
            return self._gather_base(indices)
        # Mixed base/overlay rows (post-churn): assemble per row.  Gathers
        # are bucket-sized, so the Python loop is not the serving bottleneck.
        lengths = np.empty(indices.size, dtype=np.int64)
        pieces = []
        for position, index in enumerate(indices):
            index = int(index)
            if index < self._base_n:
                start, end = int(self._indptr[index]), int(self._indptr[index + 1])
                row = np.asarray(self._base_items[start:end])
            else:
                _, row = self._overlay.gather(
                    np.asarray([index - self._base_n], dtype=np.intp)
                )
            lengths[position] = row.shape[0]
            pieces.append(row)
        flat = (
            np.concatenate(pieces) if pieces else np.empty(0, dtype=np.int64)
        )
        return lengths, flat.astype(np.int64, copy=False)

    def _gather_base(self, indices: np.ndarray):
        starts = self._indptr[indices]
        ends = self._indptr[indices + 1]
        lengths = ends - starts
        total = int(lengths.sum())
        if total == 0:
            return lengths, np.empty(0, dtype=np.int64)
        offsets = np.concatenate(([0], np.cumsum(lengths)[:-1]))
        positions = np.repeat(starts - offsets, lengths) + np.arange(total)
        return lengths, np.asarray(self._base_items[positions], dtype=np.int64)

    def append(self, points: Sequence) -> None:
        if self._read_only:
            raise InvalidParameterError("attached memmap stores are read-only")
        self._overlay.append(points)

    def to_shared(self) -> SharedStoreExport:
        descriptor = {
            "kind": "memmap_sets",
            "indptr_path": self._indptr_path,
            "items_path": self._items_path,
            "rows": self._base_n,
            "overlay": [
                None if p is None else sorted(int(i) for i in p)
                for p in self._overlay._points
            ],
        }
        return SharedStoreExport(descriptor, [])

    def detach(self) -> None:
        items = self._base_items
        self._base_items = np.empty(0, dtype=np.int64)
        mm = getattr(items, "_mmap", None)
        if mm is not None:
            try:
                mm.close()
            except (OSError, ValueError, BufferError):  # pragma: no cover
                pass

    def stats_dict(self) -> Dict:
        payload = super().stats_dict()
        payload["path"] = self._items_path
        payload["overlay_rows"] = len(self._overlay)
        return payload

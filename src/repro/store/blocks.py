"""The narrow block-fetch protocol between remote stores and block servers.

A remote dataset store needs exactly two operations from wherever the bytes
live, mirroring the feature-store/graph-store split of PyG (the index
structure stays local; vectors are fetched in batches):

``meta()``
    The dtype and shape of every published array — enough to compute block
    geometry client-side.
``fetch(name, block_ids, block_size)``
    The raw bytes of the requested blocks of one array, concatenated in
    request order.  A *block* is ``block_size`` consecutive entries along
    axis 0 (rows of a dense matrix, elements of a flat item array); the last
    block may be short.  One call fetches arbitrarily many blocks — the
    batching lever that keeps a gather at one round-trip.

Implementations here:

:class:`LocalBlockClient`
    In-process fake over a dict of arrays or a v5 snapshot directory.  Used
    by tests (with :class:`~repro.testing.faults.FaultInjector` sites
    ``"blocks.meta"`` and ``"blocks.fetch"`` for torn/absent-server cases)
    and by :class:`repro.server.blocks.BlockServer` as its storage layer.
:class:`HTTPBlockClient`
    stdlib ``urllib`` client of the HTTP endpoints ``GET /v1/blocks/meta``
    and ``GET /v1/blocks/fetch`` served by
    :class:`repro.server.blocks.BlockServer`.

Every failure mode — unreachable server, HTTP error status, short (torn)
payload, unknown array — surfaces as the one typed
:class:`~repro.exceptions.BlockFetchError`.
"""

from __future__ import annotations

import abc
import json
import pathlib
import urllib.error
import urllib.parse
import urllib.request
from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from repro.exceptions import BlockFetchError, InvalidParameterError

__all__ = ["BlockClient", "HTTPBlockClient", "LocalBlockClient", "block_count"]


def block_count(rows: int, block_size: int) -> int:
    """Number of blocks an array of *rows* entries splits into."""
    return max(1, -(-int(rows) // int(block_size)))


class BlockClient(abc.ABC):
    """The two-method protocol remote stores fetch vector blocks through."""

    @abc.abstractmethod
    def meta(self) -> Dict:
        """``{"arrays": {name: {"dtype": <numpy str>, "shape": [...]}}}``."""

    @abc.abstractmethod
    def fetch(self, name: str, block_ids: Sequence[int], block_size: int) -> bytes:
        """Raw bytes of the requested blocks, concatenated in request order.

        Must return exactly the bytes the block geometry implies (row size ×
        rows covered); anything shorter is *torn* and the caller raises
        :class:`~repro.exceptions.BlockFetchError`.
        """

    def close(self) -> None:
        """Release client resources (idempotent; default no-op)."""


def _array_meta(arrays: Mapping[str, np.ndarray]) -> Dict:
    return {
        "arrays": {
            name: {"dtype": array.dtype.str, "shape": [int(s) for s in array.shape]}
            for name, array in arrays.items()
        }
    }


def _slice_blocks(
    array: np.ndarray, block_ids: Sequence[int], block_size: int, name: str
) -> bytes:
    rows = int(array.shape[0])
    pieces = []
    for block_id in block_ids:
        block_id = int(block_id)
        start = block_id * int(block_size)
        if block_id < 0 or start >= max(rows, 1):
            raise BlockFetchError(
                f"block {block_id} out of range for array {name!r} "
                f"({rows} rows / block_size {block_size})",
                name=name,
            )
        stop = min(start + int(block_size), rows)
        pieces.append(np.ascontiguousarray(array[start:stop]).tobytes())
    return b"".join(pieces)


class LocalBlockClient(BlockClient):
    """In-process :class:`BlockClient` over arrays or a v5 snapshot directory.

    *source* is either a mapping of array name → ``np.ndarray`` (tests) or a
    v5 snapshot directory, whose ``arrays/dataset__*.npy`` payloads are
    opened lazily with ``mmap_mode="r"`` (so the "server side" is itself
    out-of-core).

    *fault_injector* arms the chaos sites: ``"blocks.meta"`` fires inside
    :meth:`meta`, ``"blocks.fetch"`` inside :meth:`fetch` — an armed action
    raising :class:`ConnectionError`/``OSError`` models an absent server.
    *torn_bytes* (set via :meth:`tear_next_fetch`) truncates the next
    fetch's payload to model a torn transfer.
    """

    #: The dataset arrays a v5 snapshot publishes over the block protocol.
    SNAPSHOT_ARRAYS = ("dataset__dense", "dataset__indptr", "dataset__items")

    def __init__(self, source, fault_injector=None):
        if isinstance(source, Mapping):
            self._arrays: Dict[str, np.ndarray] = dict(source)
        else:
            directory = pathlib.Path(source) / "arrays"
            self._arrays = {}
            for name in self.SNAPSHOT_ARRAYS:
                path = directory / f"{name}.npy"
                if path.exists():
                    self._arrays[name] = np.load(path, mmap_mode="r", allow_pickle=False)
            if not self._arrays:
                raise InvalidParameterError(
                    f"{source} holds no v5 dataset arrays to serve blocks from"
                )
        self.fault_injector = fault_injector
        self._torn_next: Optional[int] = None
        self.fetch_calls = 0

    def tear_next_fetch(self, keep_bytes: int) -> None:
        """Truncate the next fetch's payload to *keep_bytes* (torn transfer)."""
        self._torn_next = int(keep_bytes)

    def _fire(self, site: str) -> None:
        if self.fault_injector is not None:
            self.fault_injector.fire(site)

    def meta(self) -> Dict:
        try:
            self._fire("blocks.meta")
        except BlockFetchError:
            raise
        except Exception as error:
            raise BlockFetchError(f"block metadata fetch failed: {error}") from error
        return _array_meta(self._arrays)

    def fetch(self, name: str, block_ids: Sequence[int], block_size: int) -> bytes:
        self.fetch_calls += 1
        try:
            self._fire("blocks.fetch")
        except BlockFetchError:
            raise
        except Exception as error:
            raise BlockFetchError(
                f"block fetch failed for {name!r}: {error}", name=name
            ) from error
        array = self._arrays.get(name)
        if array is None:
            raise BlockFetchError(f"unknown block array {name!r}", name=name)
        payload = _slice_blocks(array, block_ids, block_size, name)
        if self._torn_next is not None:
            payload, self._torn_next = payload[: self._torn_next], None
        return payload


class HTTPBlockClient(BlockClient):
    """stdlib HTTP client of a :class:`repro.server.blocks.BlockServer`.

    One ``GET /v1/blocks/fetch`` round-trip per :meth:`fetch` call, however
    many blocks it names — batching lives in the query string, not in
    connection count.
    """

    def __init__(self, endpoint: str, timeout: float = 10.0):
        if not isinstance(endpoint, str) or not endpoint.startswith(("http://", "https://")):
            raise InvalidParameterError(
                f"BlockClient endpoint must be an http(s) URL, got {endpoint!r}"
            )
        self.endpoint = endpoint.rstrip("/")
        self.timeout = float(timeout)
        self.fetch_calls = 0

    def _get(self, path: str) -> bytes:
        url = f"{self.endpoint}{path}"
        try:
            with urllib.request.urlopen(url, timeout=self.timeout) as response:
                return response.read()
        except urllib.error.HTTPError as error:
            raise BlockFetchError(
                f"block server returned HTTP {error.code} for {url}"
            ) from error
        except (urllib.error.URLError, ConnectionError, OSError, TimeoutError) as error:
            raise BlockFetchError(f"block server unreachable at {url}: {error}") from error

    def meta(self) -> Dict:
        payload = self._get("/v1/blocks/meta")
        try:
            return json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as error:
            raise BlockFetchError(f"malformed block metadata: {error}") from error

    def fetch(self, name: str, block_ids: Sequence[int], block_size: int) -> bytes:
        self.fetch_calls += 1
        query = urllib.parse.urlencode(
            {
                "name": name,
                "blocks": ",".join(str(int(b)) for b in block_ids),
                "block_size": int(block_size),
            }
        )
        return self._get(f"/v1/blocks/fetch?{query}")

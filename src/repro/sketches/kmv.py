"""Bottom-t (KMV) count-distinct sketches.

A single sketch keeps, for each of ``delta_rows`` independent hash functions,
the ``t`` smallest distinct hash values observed.  The per-row estimate of
the number of distinct elements is ``t * R / v_t`` where ``R`` is the hash
range and ``v_t`` the ``t``-th smallest value; the overall estimate is the
median across rows, exactly as in the construction the paper cites
(Bar-Yossef et al., RANDOM 2002).  Two sketches built with the *same* hash
functions can be merged by keeping the ``t`` smallest values of the union of
their value lists — the property Section 4 relies on to combine the sketches
of the ``L`` buckets colliding with a query.

:class:`DistinctCountSketcher` is the factory that fixes the shared hash
functions so that sketches created for different buckets are mergeable.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.rng import SeedLike, ensure_rng
from repro.sketches.hashing import PairwiseIndependentHash


class BottomTSketch:
    """A mergeable bottom-``t`` sketch over integer keys.

    Mergeability works in both directions: whole sketches combine with
    :meth:`merge` (the query-time operation over the ``L`` colliding
    buckets), and key batches fold into an existing sketch with
    :meth:`add_keys` (the maintenance-time operation the dynamic serving
    layer uses to absorb insert batches without re-sketching buckets).

    Parameters
    ----------
    hashes:
        The shared hash rows; obtain them from a
        :class:`DistinctCountSketcher` so sketches stay mergeable.
    t:
        Number of smallest distinct hash values kept per row.
    """

    def __init__(self, hashes: Sequence[PairwiseIndependentHash], t: int):
        if t < 1:
            raise InvalidParameterError(f"t must be >= 1, got {t}")
        if not hashes:
            raise InvalidParameterError("at least one hash row is required")
        self._hashes = list(hashes)
        self.t = int(t)
        # One sorted list of the smallest distinct hash values per row.
        self._rows: List[List[int]] = [[] for _ in self._hashes]

    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        """Number of independent hash rows (the delta repetitions)."""
        return len(self._hashes)

    def update(self, key: int) -> None:
        """Insert one element (by integer key) into the sketch."""
        key = int(key)
        for row, hash_function in zip(self._rows, self._hashes):
            value = hash_function(key)
            _insert_bottom(row, value, self.t)

    def update_many(self, keys: Iterable[int]) -> None:
        """Insert many elements (see :meth:`add_keys`)."""
        self.add_keys(keys)

    def add_keys(self, keys: Iterable[int]) -> "BottomTSketch":
        """Fold a batch of keys into this sketch in place; returns ``self``.

        This is the incremental-maintenance primitive: inserting a key is
        equivalent to merging a singleton sketch of it, so a mutation batch
        can be absorbed into an existing bucket sketch in ``O(batch)`` hash
        evaluations instead of re-sketching the whole bucket.  Insertion is
        idempotent — bottom-``t`` rows are deduplicated sets of hash values —
        so re-adding an already-counted key never changes the estimate.

        Parameters
        ----------
        keys:
            Integer keys (dataset slot indices) to insert.
        """
        materialized = [int(key) for key in keys]
        t = self.t
        for row, hash_function in zip(self._rows, self._hashes):
            for key in materialized:
                value = hash_function(key)
                # Skip the bisect for values that cannot enter a full row.
                if len(row) == t and value >= row[-1]:
                    continue
                _insert_bottom(row, value, t)
        return self

    def estimate(self) -> float:
        """Median-of-rows estimate of the number of distinct inserted keys."""
        # Small streams are answered exactly: every row has seen fewer than t
        # distinct values, so the bottom-t list *is* the full value set.
        estimates = []
        for row, hash_function in zip(self._rows, self._hashes):
            if len(row) < self.t:
                estimates.append(float(len(row)))
            else:
                v_t = row[self.t - 1]
                if v_t == 0:
                    estimates.append(float(len(row)))
                else:
                    estimates.append(self.t * hash_function.output_range / v_t)
        return float(np.median(estimates))

    def merge(self, other: "BottomTSketch") -> "BottomTSketch":
        """Return a new sketch equivalent to sketching the union of streams.

        Both sketches must come from the same :class:`DistinctCountSketcher`
        (i.e. share hash functions and ``t``); merging sketches with different
        randomness would produce meaningless estimates.
        """
        self._check_compatible(other)
        merged = BottomTSketch(self._hashes, self.t)
        merged._rows = [
            _merge_bottom(mine, theirs, self.t) for mine, theirs in zip(self._rows, other._rows)
        ]
        return merged

    @staticmethod
    def merge_all(sketches: Sequence["BottomTSketch"]) -> "BottomTSketch":
        """Merge a non-empty sequence of compatible sketches."""
        if not sketches:
            raise InvalidParameterError("cannot merge an empty sequence of sketches")
        result = sketches[0]
        for sketch in sketches[1:]:
            result = result.merge(sketch)
        return result

    # ------------------------------------------------------------------
    def _check_compatible(self, other: "BottomTSketch") -> None:
        if self.t != other.t or len(self._hashes) != len(other._hashes):
            raise InvalidParameterError("sketches have incompatible shapes and cannot be merged")
        for mine, theirs in zip(self._hashes, other._hashes):
            if mine is not theirs and (mine.a != theirs.a or mine.b != theirs.b):
                raise InvalidParameterError(
                    "sketches were built with different hash functions; "
                    "create them from the same DistinctCountSketcher"
                )


def _insert_bottom(row: List[int], value: int, t: int) -> None:
    """Insert *value* into the sorted bottom-``t`` list *row* (deduplicated)."""
    import bisect

    position = bisect.bisect_left(row, value)
    if position < len(row) and row[position] == value:
        return
    if len(row) < t:
        row.insert(position, value)
    elif value < row[-1]:
        row.insert(position, value)
        row.pop()


def _merge_bottom(a: List[int], b: List[int], t: int) -> List[int]:
    """Bottom-``t`` of the union of two sorted, deduplicated lists."""
    merged = sorted(set(a) | set(b))
    return merged[:t]


class DistinctCountSketcher:
    """Factory producing mergeable :class:`BottomTSketch` instances.

    Parameters
    ----------
    epsilon:
        Target relative accuracy; the bottom-``t`` size is ``ceil(c / eps^2)``.
        Section 4 uses ``epsilon = 1/2``.
    delta:
        Failure probability; the number of independent rows is
        ``ceil(log(1/delta))`` (at least 1).
    universe_size:
        Upper bound on the number of distinct keys (used to size the hash
        output range to ``universe^3`` as in the paper's description).
    seed:
        Controls the shared hash functions.
    """

    def __init__(
        self,
        universe_size: int,
        epsilon: float = 0.5,
        delta: float = 0.01,
        seed: SeedLike = None,
    ):
        if universe_size < 1:
            raise InvalidParameterError(f"universe_size must be >= 1, got {universe_size}")
        if not 0.0 < epsilon < 1.0:
            raise InvalidParameterError(f"epsilon must be in (0, 1), got {epsilon}")
        if not 0.0 < delta < 1.0:
            raise InvalidParameterError(f"delta must be in (0, 1), got {delta}")
        rng = ensure_rng(seed)
        self.universe_size = int(universe_size)
        self.epsilon = float(epsilon)
        self.delta = float(delta)
        self.t = max(1, int(math.ceil(4.0 / (epsilon * epsilon))))
        self.num_rows = max(1, int(math.ceil(math.log(1.0 / delta))))
        output_range = max(universe_size**3, 1 << 20)
        self._hashes = [
            PairwiseIndependentHash.sample(output_range, rng) for _ in range(self.num_rows)
        ]

    def new_sketch(self) -> BottomTSketch:
        """Create an empty sketch sharing this sketcher's hash functions."""
        return BottomTSketch(self._hashes, self.t)

    def sketch_keys(self, keys: Iterable[int]) -> BottomTSketch:
        """Create a sketch and insert all of *keys*."""
        sketch = self.new_sketch()
        sketch.update_many(keys)
        return sketch

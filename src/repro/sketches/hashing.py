"""Pairwise-independent hash functions over integer keys.

The count-distinct sketch of Bar-Yossef et al. (Section 2.3 of the paper)
hashes stream elements with a function drawn from a pairwise independent
family mapping ``[n] -> [n^3]``.  We implement the classical
``(a * x + b) mod p`` construction over a Mersenne prime, reduced into the
requested range.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.rng import SeedLike, ensure_rng

#: Mersenne prime 2^61 - 1; large enough for any practical universe here.
_PRIME = (1 << 61) - 1


class PairwiseIndependentHash:
    """A hash ``x -> ((a x + b) mod p) mod range`` with random ``a, b``."""

    def __init__(self, a: int, b: int, output_range: int):
        if not 0 < a < _PRIME:
            raise InvalidParameterError("multiplier a must be in (0, prime)")
        if not 0 <= b < _PRIME:
            raise InvalidParameterError("offset b must be in [0, prime)")
        if output_range < 1:
            raise InvalidParameterError(f"output range must be >= 1, got {output_range}")
        self.a = int(a)
        self.b = int(b)
        self.output_range = int(output_range)

    @classmethod
    def sample(cls, output_range: int, seed: SeedLike = None) -> "PairwiseIndependentHash":
        """Draw a random member of the family with the given output range."""
        rng = ensure_rng(seed)
        a = int(rng.integers(1, _PRIME))
        b = int(rng.integers(0, _PRIME))
        return cls(a, b, output_range)

    def __call__(self, key: int) -> int:
        return ((self.a * int(key) + self.b) % _PRIME) % self.output_range

    def hash_array(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized evaluation over an integer array (exact arithmetic)."""
        keys = np.asarray(keys)
        # Use Python ints (object dtype) to avoid 64-bit overflow; the arrays
        # involved are small (bucket-sized), so this is not a hot path.
        values = [((self.a * int(k) + self.b) % _PRIME) % self.output_range for k in keys]
        return np.asarray(values, dtype=np.int64)

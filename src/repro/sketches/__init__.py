"""Mergeable count-distinct (F0) sketches.

Section 4 of the paper equips every LSH bucket with a sketch for the number
of distinct elements so that the query can estimate, by merging the sketches
of the ``L`` colliding buckets, a 1/2-approximation of the number of distinct
points colliding with the query.  The sketch used here is the bottom-``t``
(KMV) variant of the Bar-Yossef et al. construction referenced by the paper:
keep the ``t`` smallest hash values of the elements seen so far; merging two
sketches is just keeping the ``t`` smallest values of their union.
"""

from repro.sketches.hashing import PairwiseIndependentHash
from repro.sketches.kmv import BottomTSketch, DistinctCountSketcher

__all__ = ["PairwiseIndependentHash", "BottomTSketch", "DistinctCountSketcher"]

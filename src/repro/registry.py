"""String-keyed registries for samplers, distance measures and LSH families.

The declarative spec layer (:mod:`repro.spec`) describes a data structure as
*names plus parameters* — ``{"sampler": "independent", "lsh": {"family":
"onebit_minhash"}, ...}`` — and resolves those names here at build time.
Keeping the name → class mapping in one place means a new scenario is a
config value, not new wiring code: third-party subclasses register
themselves with the same decorators the built-in classes use and become
reachable from every layer (specs, the :class:`~repro.api.FairNN` facade,
engine snapshots, the experiment configs) without touching core.

Three registries exist, one per extension point:

``SAMPLERS``
    Concrete :class:`~repro.core.base.NeighborSampler` classes.  Each entry
    records how the class is constructed via the ``inputs`` metadata key:
    ``"family"`` (first argument is an LSH family), ``"measure"`` (first
    argument is a distance measure) or ``"self"`` (self-contained — only
    keyword parameters).  :class:`~repro.core.weighted.WeightedFairSampler`
    is deliberately *not* registered: it wraps another sampler with an
    arbitrary Python callable and therefore has no declarative description.
``DISTANCES``
    Concrete :class:`~repro.distances.base.Measure` classes.
``LSH_FAMILIES``
    Concrete base :class:`~repro.lsh.family.LSHFamily` classes
    (:class:`~repro.lsh.family.ConcatenatedFamily` is derived — AND
    composition is applied by the samplers, not named in specs).

Usage
-----
Registering a custom class (the built-ins do exactly this)::

    from repro.registry import register_sampler

    @register_sampler("my_sampler", inputs="family")
    class MySampler(LSHNeighborSampler):
        ...

Resolving a name::

    from repro.registry import get_sampler
    cls = get_sampler("independent")
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Optional, Tuple, Type

from repro.exceptions import InvalidParameterError

__all__ = [
    "Registry",
    "SAMPLERS",
    "DISTANCES",
    "LSH_FAMILIES",
    "register_sampler",
    "register_distance",
    "register_lsh_family",
    "get_sampler",
    "get_distance",
    "get_lsh_family",
    "sampler_names",
    "distance_names",
    "lsh_family_names",
]


class Registry:
    """A name → class mapping with per-entry metadata.

    Names are short, stable, lower-case strings — they appear in JSON specs
    and snapshot manifests, so renaming one is a format break.  Registration
    is idempotent for the same class and an error for a different class
    (silent replacement would make spec resolution order-dependent).
    """

    def __init__(self, kind: str):
        self.kind = kind
        self._classes: Dict[str, type] = {}
        self._metadata: Dict[str, dict] = {}

    # ------------------------------------------------------------------
    def register(self, name: str, cls: type, **metadata) -> type:
        """Register *cls* under *name*; returns *cls* (decorator-friendly)."""
        if not isinstance(name, str) or not name:
            raise InvalidParameterError(f"{self.kind} registry keys must be non-empty strings")
        existing = self._classes.get(name)
        if existing is not None and existing is not cls:
            raise InvalidParameterError(
                f"{self.kind} name {name!r} is already registered to "
                f"{existing.__module__}.{existing.__qualname__}"
            )
        self._classes[name] = cls
        self._metadata[name] = dict(metadata)
        return cls

    def decorator(self, name: str, **metadata) -> Callable[[type], type]:
        """``@registry.decorator("name")`` — register the decorated class."""

        def wrap(cls: type) -> type:
            return self.register(name, cls, **metadata)

        return wrap

    # ------------------------------------------------------------------
    def get(self, name: str) -> type:
        """The class registered under *name*; raises with the known names."""
        try:
            return self._classes[name]
        except KeyError:
            known = ", ".join(self.names()) or "<none>"
            raise InvalidParameterError(
                f"unknown {self.kind} {name!r}; registered: {known}"
            ) from None

    def metadata(self, name: str) -> dict:
        """A copy of the metadata recorded when *name* was registered."""
        self.get(name)  # raise the standard error for unknown names
        return dict(self._metadata[name])

    def names(self) -> Tuple[str, ...]:
        """All registered names, sorted."""
        return tuple(sorted(self._classes))

    def name_of(self, cls: type) -> Optional[str]:
        """The name *cls* (or its nearest registered base) is registered as.

        Walks the MRO so that unregistered subclasses still resolve to a
        meaningful name — e.g. for labelling query responses.  Returns
        ``None`` when nothing in the MRO is registered.
        """
        by_class = {c: n for n, c in self._classes.items()}
        for base in getattr(cls, "__mro__", (cls,)):
            if base in by_class:
                return by_class[base]
        return None

    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._classes

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._classes)

    def items(self) -> Tuple[Tuple[str, type], ...]:
        """Sorted ``(name, class)`` pairs."""
        return tuple((name, self._classes[name]) for name in self.names())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Registry({self.kind!r}, {list(self.names())})"


#: Concrete :class:`~repro.core.base.NeighborSampler` classes.
SAMPLERS = Registry("sampler")

#: Concrete :class:`~repro.distances.base.Measure` classes.
DISTANCES = Registry("distance")

#: Concrete base :class:`~repro.lsh.family.LSHFamily` classes.
LSH_FAMILIES = Registry("LSH family")


def register_sampler(name: str, *, inputs: str = "family") -> Callable[[type], type]:
    """Class decorator registering a sampler under *name*.

    ``inputs`` declares the constructor shape the spec layer must use:
    ``"family"`` — ``cls(family, **params, seed=seed)``; ``"measure"`` —
    ``cls(measure, **params, seed=seed)``; ``"self"`` — ``cls(**params,
    seed=seed)``.
    """
    if inputs not in ("family", "measure", "self"):
        raise InvalidParameterError(
            f"sampler inputs must be 'family', 'measure' or 'self', got {inputs!r}"
        )
    return SAMPLERS.decorator(name, inputs=inputs)


def register_distance(name: str) -> Callable[[type], type]:
    """Class decorator registering a distance/similarity measure under *name*."""
    return DISTANCES.decorator(name)


def register_lsh_family(name: str) -> Callable[[type], type]:
    """Class decorator registering a base LSH family under *name*."""
    return LSH_FAMILIES.decorator(name)


def get_sampler(name: str) -> Type:
    """The sampler class registered under *name*."""
    return SAMPLERS.get(name)


def get_distance(name: str) -> Type:
    """The measure class registered under *name*."""
    return DISTANCES.get(name)


def get_lsh_family(name: str) -> Type:
    """The LSH family class registered under *name*."""
    return LSH_FAMILIES.get(name)


def sampler_names() -> Tuple[str, ...]:
    """All registered sampler names, sorted."""
    return SAMPLERS.names()


def distance_names() -> Tuple[str, ...]:
    """All registered distance names, sorted."""
    return DISTANCES.names()


def lsh_family_names() -> Tuple[str, ...]:
    """All registered LSH family names, sorted."""
    return LSH_FAMILIES.names()

"""``FairNN`` — one facade over samplers, tables, engines and snapshots.

Everything the library can do is reachable through four uncoordinated
construction paths (direct sampler constructors,
:meth:`~repro.engine.batch.BatchQueryEngine.build`,
:func:`~repro.engine.snapshot.save_engine` /
:func:`~repro.engine.snapshot.load_engine`, and the experiment configs).
:class:`FairNN` puts a single declarative entry point in front of them: a
facade built from an :class:`~repro.spec.EngineSpec` (or a bare
:class:`~repro.spec.SamplerSpec`, or their dict/JSON forms) that fits,
serves, mutates, queries and snapshots without the caller naming a single
class.

Static use::

    nn = FairNN.from_spec(spec).fit(dataset)
    nn.sample(query)                  # one uniform near neighbor
    nn.neighborhood(query)            # exact ground-truth ball

Serving use::

    nn = FairNN.from_spec(spec).serve(dataset)    # dynamic tables + engines
    nn.run(batch_of_requests)                     # batched execution
    nn.insert_many(new_points); nn.delete(3)      # online churn, no refit
    nn.save("snapshots/today")                    # spec rides along (format v3)
    clone = FairNN.load("snapshots/today")        # byte-identical primary

Multiple samplers can be served **by name over one shared table set** — the
spec maps names to :class:`~repro.spec.SamplerSpec` entries, all LSH-backed
samplers attach to tables sized by the primary's parameter rule, and every
query method takes ``sampler="name"``.
"""

from __future__ import annotations

import json
import os
import pathlib
import re
import shutil
import threading
from collections import OrderedDict
from dataclasses import replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.core.base import LSHNeighborSampler, NeighborSampler
from repro.engine.batch import BatchQueryEngine, build_tables
from repro.engine.dynamic import DynamicLSHTables
from repro.engine.sharded import ShardedEngine, ShardedLSHTables
from repro.engine.requests import EngineStats, QueryRequest, QueryResponse
from repro.engine.snapshot import load_engine, save_engine
from repro.engine.wal import WriteAheadLog
from repro.exceptions import (
    AlreadyDeletedError,
    InvalidParameterError,
    NotFittedError,
    SlotOutOfRangeError,
    SnapshotCorruptError,
    WALCorruptError,
)
from repro.lsh.tables import LSHTables
from repro.spec import EngineSpec, SamplerSpec, spec_from_dict
from repro.store import StoreSpec
from repro.types import Dataset, Point

__all__ = ["FairNN"]

SpecLike = Union[EngineSpec, SamplerSpec, Mapping, str]

#: Checkpoint directories inside ``<data_dir>/snapshots`` — named by the WAL
#: position they cover (every record with ``seq < N`` is inside the snapshot).
_CHECKPOINT_RE = re.compile(r"^checkpoint-(\d{20})$")

#: Replayed-but-remembered mutation results kept for idempotent retries.
_IDEMPOTENCY_CAP = 4096

#: Checkpoints retained per data directory (newest first; older ones are the
#: fallback when the newest fails to load).
_CHECKPOINTS_KEPT = 2

_IDEMPOTENCY_MISS = object()


class FairNN:
    """Declarative facade over the whole fair near-neighbor stack.

    Construct with :meth:`from_spec` (accepting an
    :class:`~repro.spec.EngineSpec`, a single
    :class:`~repro.spec.SamplerSpec`, or their dict/JSON forms), then either
    :meth:`fit` for static use or :meth:`serve` for a mutable serving setup.
    All query methods accept ``sampler=<name>`` to address one of the named
    samplers; the default is the spec's primary.
    """

    def __init__(self, spec: EngineSpec):
        if not isinstance(spec, EngineSpec):
            raise InvalidParameterError(
                f"FairNN requires an EngineSpec; use FairNN.from_spec for {type(spec).__name__}"
            )
        self._spec = spec
        self._samplers: Dict[str, NeighborSampler] = {}
        self._engines: Dict[str, BatchQueryEngine] = {}
        self._tables: Optional[LSHTables] = None
        self._dataset: Optional[Dataset] = None
        self._serving = False
        # Makes a facade-level mutation (apply to the shared tables + notify
        # every engine) atomic under concurrent callers — the HTTP serving
        # surface mutates from handler threads.  Also serializes WAL appends
        # with their applies, so the log order equals the apply order.
        self._mutation_lock = threading.Lock()
        self._wal: Optional[WriteAheadLog] = None
        self._data_dir: Optional[pathlib.Path] = None
        self._idempotency: "OrderedDict[str, Any]" = OrderedDict()
        self._recovered_records = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_spec(cls, spec: SpecLike, name: str = "default") -> "FairNN":
        """Build a facade from any spec form.

        *spec* may be an :class:`~repro.spec.EngineSpec`, a
        :class:`~repro.spec.SamplerSpec` (wrapped as a one-sampler engine
        under *name*), a plain dict in either ``to_dict`` schema, or a JSON
        string of one of those dicts.
        """
        if isinstance(spec, str):
            spec = spec_from_dict(json.loads(spec))
        elif isinstance(spec, Mapping):
            spec = spec_from_dict(spec)
        if isinstance(spec, SamplerSpec):
            spec = EngineSpec(samplers={name: spec}, primary=name)
        if not isinstance(spec, EngineSpec):
            raise InvalidParameterError(
                f"cannot build a FairNN from a {type(spec).__name__}; "
                "expected an EngineSpec or SamplerSpec (or their dict/JSON forms)"
            )
        return cls(spec)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def spec(self) -> EngineSpec:
        """The declarative description this facade was built from."""
        return self._spec

    @property
    def primary(self) -> str:
        """Name of the default sampler."""
        return self._spec.primary

    @property
    def sampler_names(self) -> List[str]:
        """The named samplers, in spec order."""
        return list(self._spec.samplers)

    @property
    def samplers(self) -> Dict[str, NeighborSampler]:
        """The built sampler objects by name (empty before fit/serve)."""
        return dict(self._samplers)

    @property
    def tables(self) -> Optional[LSHTables]:
        """The shared table layer, when one exists."""
        return self._tables

    @property
    def is_serving(self) -> bool:
        """Whether :meth:`serve` promoted this facade to a serving setup."""
        return self._serving

    @property
    def is_dynamic(self) -> bool:
        """Whether the shared tables accept online inserts and deletes."""
        return isinstance(self._tables, DynamicLSHTables)

    @property
    def is_sharded(self) -> bool:
        """Whether the index is partitioned across shards."""
        return isinstance(self._tables, ShardedLSHTables)

    @property
    def n_shards(self) -> int:
        """Number of index partitions actually serving (1 when unsharded)."""
        if isinstance(self._tables, ShardedLSHTables):
            return self._tables.n_shards
        return 1

    @property
    def num_live_points(self) -> int:
        """Live (non-tombstoned) indexed points."""
        if isinstance(self._tables, DynamicLSHTables):
            return self._tables.num_live
        self._check_built()
        return self._samplers[self.primary].num_points

    def engine(self, sampler: Optional[str] = None) -> BatchQueryEngine:
        """The :class:`~repro.engine.batch.BatchQueryEngine` of one sampler."""
        self._check_built()
        return self._engines[self._resolve_name(sampler)]

    @property
    def engines(self) -> Dict[str, BatchQueryEngine]:
        """The per-sampler serving engines by name (empty before fit/serve).

        The handle the serving layer (:mod:`repro.server`) uses for hot
        snapshot swaps and per-engine lifecycle management.
        """
        return dict(self._engines)

    def stats(self) -> Dict[str, EngineStats]:
        """Per-sampler serving statistics, keyed by sampler name."""
        return {name: engine.stats for name, engine in self._engines.items()}

    def close(self) -> None:
        """Release engine-held resources deterministically; idempotent.

        Thread-pool engines shut their executors down and process-executor
        engines terminate their shard workers and unlink shared-memory
        segments.  Interpreter-exit finalizers cover an unclosed facade, but
        long-lived applications (and the hot-swap path, which retires whole
        generations) should close retired facades promptly.  The facade
        stays usable for non-serving reads; ``fit``/``serve`` rebuild
        engines.  A durable facade also fsyncs and closes its WAL.
        """
        for engine in self._engines.values():
            close = getattr(engine, "close", None)
            if close is not None:
                close()
        if self._wal is not None:
            self._wal.close()
            self._wal = None

    def capacity(self) -> Dict:
        """Raw index occupancy, the substrate of serving-layer capacity models.

        Returns a JSON-serializable dict:

        ``live_points``
            Live (non-tombstoned) indexed points.
        ``total_slots``
            Allocated dataset slots, live and tombstoned — what the index
            structurally holds until compaction reclaims space.
        ``pending_tombstones``
            Deleted slots not yet swept by compaction.
        ``memory_bytes``
            Resident bytes of the columnar dataset store plus the rank
            array, when a store exists (``None`` otherwise — e.g. static
            facades that never built one).
        ``n_shards``
            Index partitions (1 when unsharded).

        :class:`repro.server.CapacityModel` combines these numbers with a
        configured budget and over-commit ratio into the MAAS-pods-style
        ``total/used/available`` rendering of ``GET /v1/capacity``.
        """
        self._check_built()
        tables = self._tables
        if isinstance(tables, DynamicLSHTables):
            live = tables.num_live
            total_slots = len(tables.dataset)
            pending = tables.pending_tombstones
        else:
            live = self.num_live_points
            total_slots = live
            pending = 0
        memory_bytes = None
        store_backend = None
        store = getattr(tables, "point_store", None) if tables is not None else None
        if store is None:
            # Static facades have no dynamic table store; the engines still
            # know the active store (cached slots only — never forces a
            # lazy columnar build just to report capacity).
            engine = self._engines.get(self.primary)
            if engine is not None:
                store = engine._current_store()
        if store is not None:
            # Backend-aware accounting: in-RAM stores charge their full
            # buffers, out-of-core stores only their resident overlay and
            # caches (mapped/fetched corpus pages are not index memory).
            memory_bytes = int(store.nbytes)
            store_backend = store.backend
            ranks = tables.ranks if tables is not None else None
            if ranks is not None:
                memory_bytes += int(ranks.nbytes)
        return {
            "live_points": int(live),
            "total_slots": int(total_slots),
            "pending_tombstones": int(pending),
            "memory_bytes": memory_bytes,
            "store_backend": store_backend,
            "n_shards": self.n_shards,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def fit(self, dataset: Dataset) -> "FairNN":
        """Build every named sampler over *dataset* (static tables).

        With exactly one LSH-backed sampler this is byte-identical to the
        hand-written ``spec.build().fit(dataset)``; with several, one static
        table set is built from the primary's parameter rule (with ranks if
        any attached sampler needs them) and shared by all of them.
        """
        self._build_samplers()
        lsh_named = self._lsh_samplers()
        if len(lsh_named) == 1:
            # The single-sampler path stays bitwise-aligned with a direct fit.
            next(iter(lsh_named.values())).fit(dataset)
            self._tables = next(iter(lsh_named.values())).tables
        elif lsh_named:
            self._fit_shared(dataset, dynamic=False)
        for name, sampler in self._samplers.items():
            if name not in lsh_named:
                sampler.fit(dataset)
        self._dataset = dataset
        self._serving = False
        self._make_engines()
        return self

    def serve(
        self,
        dataset: Optional[Dataset] = None,
        shards: Optional[int] = None,
        placement: Optional[str] = None,
        executor: Optional[str] = None,
        data_dir: Optional[Union[str, pathlib.Path]] = None,
        fsync: Optional[str] = None,
        store: Union[StoreSpec, str, None] = None,
    ) -> "FairNN":
        """Promote to a serving setup over shared (by default dynamic) tables.

        Builds the table layer the spec describes
        (:class:`~repro.engine.dynamic.DynamicLSHTables` unless the spec says
        ``dynamic=False``), attaches every LSH-backed sampler to it, fits the
        rest, and wraps each sampler in a
        :class:`~repro.engine.batch.BatchQueryEngine` sharing those tables.
        For one LSH sampler this matches
        :meth:`BatchQueryEngine.build(sampler, dataset)
        <repro.engine.batch.BatchQueryEngine.build>` byte-for-byte.  Call it
        directly on a fresh facade for reproducible artifacts; calling it
        after :meth:`fit` re-indexes (the construction RNG streams have
        advanced).

        ``serve(shards=N)`` (or ``EngineSpec.n_shards``) promotes to
        **sharded** serving: the index is partitioned across ``N``
        :class:`~repro.engine.dynamic.DynamicLSHTables` shards
        (:class:`~repro.engine.sharded.ShardedLSHTables`) and every engine
        becomes a :class:`~repro.engine.sharded.ShardedEngine` executing
        batches across the shards through a worker pool.  Mutations are
        routed to the owning shard once and every engine is notified, and
        responses stay byte-identical to unsharded serving for the same
        spec + seed + dataset.  Explicit arguments are recorded back into
        :attr:`spec` so snapshots describe the topology actually served.

        ``serve(executor="process")`` (or ``EngineSpec.executor``) runs each
        shard in a supervised **worker process** over shared-memory dataset
        buffers (:class:`~repro.engine.procpool.ProcessShardedEngine`) —
        still byte-identical, with crash isolation: a dying worker fails its
        in-flight batch with a typed
        :class:`~repro.exceptions.WorkerCrashedError` and is restarted from
        its shard snapshot with the mutation log replayed.

        ``serve(data_dir=P)`` makes the facade **durable**: the directory is
        initialized with a write-ahead log plus an immediate checkpoint, and
        from then on every mutation is journaled (and flushed per the
        ``fsync`` policy — see :data:`repro.engine.wal.FSYNC_POLICIES`)
        *before* it is applied.  After a crash, :meth:`recover` rebuilds the
        exact pre-crash engine from the newest checkpoint plus the WAL
        suffix.  ``data_dir`` must be fresh (no prior WAL/checkpoints) —
        resuming an existing directory is :meth:`recover`'s job, so a typo
        cannot silently fork a mutation history.  Requires dynamic tables.

        ``serve(store="memmap")`` (or ``EngineSpec.store``) demotes the
        freshly built dataset to the **out-of-core tier**: the columnar
        store is spilled to raw ``.npy`` files (under ``data_dir/store``, or
        a temporary directory without one) and re-mapped, so the corpus'
        resident footprint drops to the OS page cache and subsequent
        checkpoints are written in the mappable v5 format.  The ``remote``
        backend cannot be *built* locally — load a v5 snapshot with
        :meth:`load(..., store="remote") <load>` instead.
        """
        if dataset is None:
            dataset = self._dataset
        if dataset is None:
            raise NotFittedError("serve() needs a dataset (pass one or call fit first)")
        if shards is not None or placement is not None or executor is not None or fsync is not None:
            self._spec = replace(
                self._spec,
                n_shards=self._spec.n_shards if shards is None else int(shards),
                placement=self._spec.placement if placement is None else placement,
                executor=self._spec.executor if executor is None else executor,
                wal_fsync=self._spec.wal_fsync if fsync is None else fsync,
            )
        store_spec = StoreSpec.coerce(store if store is not None else self._spec.store)
        if store_spec.backend == "remote":
            raise InvalidParameterError(
                "serve() builds the index locally and cannot serve from a remote "
                "store; save a v5 snapshot and use FairNN.load(..., store='remote')"
            )
        if store is not None:
            self._spec = replace(self._spec, store=store_spec)
        if data_dir is not None and not self._spec.dynamic:
            raise InvalidParameterError(
                "serve(data_dir=...) journals mutations; it requires dynamic tables "
                "(EngineSpec.dynamic=True)"
            )
        self._build_samplers()
        lsh_named = self._lsh_samplers()
        if lsh_named:
            self._fit_shared(dataset, dynamic=self._spec.dynamic)
        for name, sampler in self._samplers.items():
            if name not in lsh_named:
                sampler.fit(dataset)
        self._dataset = dataset
        self._serving = True
        if store_spec.backend == "memmap":
            self._demote_to_memmap(data_dir)
        self._make_engines()
        if data_dir is not None:
            self._init_data_dir(pathlib.Path(data_dir))
        return self

    def _demote_to_memmap(self, data_dir: Optional[Union[str, pathlib.Path]]) -> None:
        """Spill the built columnar store to ``.npy`` files and re-map it."""
        import tempfile

        from repro.store import MemmapDenseStore, MemmapSetStore, StoreBackedPoints

        tables = self._tables
        if not isinstance(tables, DynamicLSHTables):
            raise InvalidParameterError(
                "serve(store='memmap') requires dynamic tables "
                "(EngineSpec.dynamic=True)"
            )
        built = tables.point_store
        if built is None:
            raise InvalidParameterError(
                "serve(store='memmap') needs a columnar dataset (dense vectors "
                "or integer sets); this dataset has no columnar form"
            )
        if data_dir is not None:
            store_dir = pathlib.Path(data_dir) / "store"
        else:
            store_dir = pathlib.Path(tempfile.mkdtemp(prefix="repro-store-"))
        store_dir.mkdir(parents=True, exist_ok=True)
        if built.kind == "dense":
            np.save(store_dir / "dataset__dense.npy", np.ascontiguousarray(built.matrix))
            mapped = MemmapDenseStore(store_dir / "dataset__dense.npy")
        else:
            np.save(store_dir / "dataset__indptr.npy", np.ascontiguousarray(built.indptr))
            np.save(store_dir / "dataset__items.npy", np.ascontiguousarray(built.items))
            mapped = MemmapSetStore(
                store_dir / "dataset__indptr.npy", store_dir / "dataset__items.npy"
            )
        released = [i for i, p in enumerate(tables._points) if p is None]
        container = StoreBackedPoints(mapped, released)
        # Swap the table layer onto the mapped tier: the container replaces
        # the in-RAM point list (freeing the original rows) and every
        # attached sampler re-anchors its dataset reference onto it.
        tables._points = container
        tables._store = mapped
        for sampler in self._samplers.values():
            if getattr(sampler, "tables", None) is tables:
                sampler._dataset = container
                sampler._store = None
        self._dataset = container

    def add_sampler(self, name: str, spec: SamplerSpec) -> "FairNN":
        """Attach one more named sampler, sharing the existing table set.

        Before :meth:`fit`/:meth:`serve` this only extends the spec.  After,
        the sampler is built immediately: LSH-backed ones attach to the
        shared tables (their family spec must match the primary's), others
        fit on the current dataset.
        """
        if name in self._spec.samplers:
            raise InvalidParameterError(f"sampler name {name!r} is already in use")
        samplers = dict(self._spec.samplers)
        samplers[name] = spec
        self._spec = replace(self._spec, samplers=samplers)
        if not self._samplers:
            return self
        self._check_family_compatible({name: spec})
        sampler = spec.build()
        if isinstance(sampler, LSHNeighborSampler) and self._tables is not None:
            dataset = (
                self._tables.dataset
                if isinstance(self._tables, DynamicLSHTables)
                else self._samplers[self.primary].dataset
            )
            sampler.attach(self._tables, dataset)
        else:
            if self._dataset is None:
                raise NotFittedError("cannot fit the new sampler: no dataset bound yet")
            sampler.fit(self._dataset)
            if isinstance(sampler, LSHNeighborSampler):
                # First LSH sampler on an otherwise non-LSH facade: its
                # tables become the shared set later additions attach to.
                self._tables = sampler.tables
        self._samplers[name] = sampler
        self._engines[name] = self._new_engine(name, sampler)
        return self

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def run(
        self,
        requests: Sequence[Union[QueryRequest, Point]],
        sampler: Optional[str] = None,
    ) -> List[QueryResponse]:
        """Answer a batch of requests through one named sampler's engine.

        Responses carry the sampler's name, so multiplexed callers can route
        answers without tracking which engine they asked.
        """
        return self.engine(sampler).run(requests)

    def sample(
        self,
        query: Point,
        sampler: Optional[str] = None,
        exclude_index: Optional[int] = None,
    ) -> Optional[int]:
        """One sampled r-near neighbor of *query* (or ``None``).

        Routed through the engine, so pending index mutations are flushed to
        the sampler first and serving statistics are maintained.
        """
        request = QueryRequest(query=query, exclude_index=exclude_index)
        return self.run([request], sampler=sampler)[0].index

    def sample_k(
        self,
        query: Point,
        k: int,
        replacement: bool = True,
        sampler: Optional[str] = None,
    ) -> List[int]:
        """Sample *k* near neighbors of *query* (see
        :meth:`~repro.core.base.NeighborSampler.sample_k`)."""
        request = QueryRequest(query=query, k=k, replacement=replacement)
        return self.run([request], sampler=sampler)[0].indices

    def neighborhood(self, query: Point, sampler: Optional[str] = None) -> np.ndarray:
        """Exact ground-truth neighborhood ``B_S(q, r)`` of *query*.

        Computed by a direct scan with the named sampler's measure and
        radius over the **live** dataset (tombstoned points are excluded),
        independent of any index — this is the reference the fair samplers'
        uniformity is measured against.

        The scan gathers the live slots *first* and evaluates the measure
        only on those: a tombstoned slot whose point object was already
        released by a compaction sweep (its dataset entry is ``None``) must
        never reach the measure kernels, and a dead point's value must never
        influence the result even before release.  Returned indices are the
        original (stable) dataset slots, so they remain comparable across
        mutations and with historical responses.
        """
        self._check_built()
        target = self._samplers[self._resolve_name(sampler)]
        dataset = target.dataset
        if isinstance(self._tables, DynamicLSHTables):
            # target.dataset is the table layer's live container (or, for a
            # non-LSH sampler, a fit-time prefix of it): slot i of either is
            # dataset slot i, so the liveness mask prefix lines up.
            alive = np.asarray(self._tables.alive[: len(dataset)])
            live = np.flatnonzero(alive)
            if live.size == 0:
                return live
            values = target.measure.values_to_query([dataset[int(i)] for i in live], query)
            mask = target.measure.within_mask(values, target.radius)
            return live[mask]
        values = target.measure.values_to_query(dataset, query)
        mask = target.measure.within_mask(values, target.radius)
        return np.flatnonzero(mask)

    # ------------------------------------------------------------------
    # Index mutation (serving, dynamic tables)
    # ------------------------------------------------------------------
    def insert(self, point: Point) -> int:
        """Index one new point online; returns its dataset index."""
        return self.insert_many([point])[0]

    def insert_many(
        self, points: Dataset, idempotency_key: Optional[str] = None
    ) -> List[int]:
        """Bulk-index new points online.

        The mutation is applied to the shared tables once (sharded facades
        route each point to its owning shard) and every named sampler's
        engine is notified, so all of them re-synchronize (lazily, on their
        next batch).  Only LSH-backed samplers can track index mutations, so
        a facade that also serves e.g. the exact baseline rejects mutation
        outright rather than letting that sampler silently answer from a
        stale dataset.

        ``insert_many([])`` is a documented no-op: it returns ``[]``
        immediately — no serving requirement is checked, no
        :class:`~repro.engine.dynamic.MutationDelta` is emitted, no engine
        counter moves and no sampler is re-synchronized.

        On a durable facade (``serve(data_dir=...)``) the batch is appended
        to the WAL before it is applied.  ``idempotency_key`` makes retries
        safe: a repeated key returns the first application's indices without
        re-inserting (the key rides inside the WAL record, so the dedup
        window survives a crash + recovery).
        """
        points = list(points)
        if not points:
            return []
        tables = self._require_dynamic()
        with self._mutation_lock:
            if idempotency_key is not None:
                hit = self._idempotency_lookup(idempotency_key)
                if hit is not _IDEMPOTENCY_MISS:
                    return list(hit)
            self._wal_append(
                {"op": "insert", "points": points, "key": idempotency_key}
            )
            indices = tables.insert_many(points)
            for engine in self._engines.values():
                engine.note_external_mutation(inserts=len(indices))
            self._idempotency_remember(idempotency_key, list(indices))
        return indices

    def delete(self, index: int, idempotency_key: Optional[str] = None) -> None:
        """Remove one point online (tombstone + amortized compaction).

        Subject to the same LSH-only restriction as :meth:`insert_many`.
        Deleting an out-of-range slot raises
        :class:`~repro.exceptions.SlotOutOfRangeError` (an ``IndexError``)
        and deleting an already-tombstoned slot raises
        :class:`~repro.exceptions.AlreadyDeletedError` (a ``KeyError``);
        both fail *before* any bookkeeping — and before any WAL append, so
        a doomed delete is never journaled.  ``idempotency_key`` works as in
        :meth:`insert_many`: a retried delete of a slot this facade already
        deleted under the same key is a no-op instead of an
        ``AlreadyDeletedError``.
        """
        tables = self._require_dynamic()
        with self._mutation_lock:
            if idempotency_key is not None:
                hit = self._idempotency_lookup(idempotency_key)
                if hit is not _IDEMPOTENCY_MISS:
                    return
            if self._wal is not None:
                # Mirror the table layer's validation so a delete that would
                # fail is rejected before it lands in the journal (replay
                # would skip it deterministically, but a clean log beats a
                # log of known-doomed records).
                index = int(index)
                n = tables.num_points
                if not 0 <= index < n:
                    raise SlotOutOfRangeError(f"index {index} out of range [0, {n})")
                if not tables.alive[index]:
                    raise AlreadyDeletedError(f"point {index} was already deleted")
            self._wal_append({"op": "delete", "index": int(index), "key": idempotency_key})
            tables.delete(index)
            for engine in self._engines.values():
                engine.note_external_mutation(deletes=1)
            self._idempotency_remember(idempotency_key, None)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def save(self, directory, format_version: Optional[int] = None) -> None:
        """Snapshot the primary sampler's engine (spec included).

        The persisted manifest carries the full :class:`~repro.spec.EngineSpec`,
        so :meth:`load` can rebuild the whole facade — secondary samplers are
        reconstructed from their specs and re-attached (their query RNG
        streams restart; the primary is restored bit-identically).

        *format_version* selects the on-disk layout (see
        :func:`~repro.engine.snapshot.save_engine`): pass ``5`` to write the
        raw-``.npy`` layout that out-of-core loading
        (``load(..., store="memmap"/"remote")``) requires; the default keeps
        the legacy zipped format unless the facade is already serving
        out-of-core.
        """
        self._check_built()
        save_engine(self.engine(self.primary), directory, format_version=format_version)

    @classmethod
    def load(
        cls,
        directory,
        store: Union[StoreSpec, str, None] = None,
        block_client=None,
    ) -> "FairNN":
        """Rebuild a facade from a snapshot written by :meth:`save`.

        Also accepts any :func:`~repro.engine.snapshot.save_engine` snapshot
        whose manifest carries a spec (format v3); for spec-less (v2 and
        older) snapshots use :func:`~repro.engine.snapshot.load_engine`.

        *store* selects the dataset's storage tier (see
        :func:`~repro.engine.snapshot.load_engine`): ``"memmap"`` maps a v5
        snapshot's arrays in place — cold start reads file headers, not the
        corpus — and ``"remote"`` fetches vector blocks from a block server
        (*block_client*, or an HTTP client built from the spec's endpoint).
        Every sampler serves byte-identical answers on every tier.
        """
        engine = load_engine(directory, store=store, block_client=block_client)
        spec = engine.spec
        if isinstance(spec, SamplerSpec):
            name = engine.sampler_name or "default"
            spec = EngineSpec(
                samplers={name: spec},
                primary=name,
                dynamic=engine.is_dynamic,
                batch_hashing=engine.batch_hashing,
                coalesce_duplicates=engine.coalesce_duplicates,
            )
        if not isinstance(spec, EngineSpec):
            raise InvalidParameterError(
                "snapshot carries no spec (pre-v3 format); load it with repro.engine.load_engine"
            )
        facade = cls(spec)
        primary = spec.primary
        primary_sampler = engine.sampler
        facade._samplers[primary] = primary_sampler
        facade._engines[primary] = engine
        facade._tables = getattr(primary_sampler, "tables", None)
        facade._dataset = primary_sampler.dataset
        facade._serving = True
        for name, sampler_spec in spec.samplers.items():
            if name == primary:
                continue
            sampler = sampler_spec.build()
            if isinstance(sampler, LSHNeighborSampler) and facade._tables is not None:
                sampler.attach(facade._tables, facade._dataset)
            else:
                sampler.fit(facade._dataset)
            facade._samplers[name] = sampler
            facade._engines[name] = facade._new_engine(name, sampler)
        return facade

    # ------------------------------------------------------------------
    # Durability (write-ahead log + checkpoints)
    # ------------------------------------------------------------------
    @property
    def data_dir(self) -> Optional[pathlib.Path]:
        """The durable data directory, when serving with one."""
        return self._data_dir

    @property
    def wal(self) -> Optional[WriteAheadLog]:
        """The mutation journal, when serving with a data directory."""
        return self._wal

    @classmethod
    def recover(
        cls, data_dir: Union[str, pathlib.Path], fsync: Optional[str] = None
    ) -> "FairNN":
        """Rebuild the exact pre-crash facade from a durable data directory.

        Loads the newest checkpoint that passes validation (a checkpoint
        that raises :class:`~repro.exceptions.SnapshotCorruptError` falls
        back to the previous one), then replays every WAL record past that
        checkpoint's position.  Because checkpoints persist the mutation
        RNG stream, replaying the logical ops re-draws the same ranks the
        live engine drew — the recovered facade serves **byte-identical**
        answers to one that never crashed.  A torn final WAL record (the
        residue of dying mid-append) is truncated, matching the crashed
        process, where that mutation was never applied.

        Idempotency keys ride inside WAL records, so the replay also
        restores the retry-dedup window: a client retrying a mutation whose
        ack was lost in the crash gets the original result, not a double
        apply.

        ``fsync`` overrides the persisted fsync policy for the recovered
        facade (recorded back into the spec).
        """
        data_dir = pathlib.Path(data_dir)
        snapshots_root = data_dir / "snapshots"
        candidates = (
            sorted(
                (p for p in snapshots_root.iterdir() if _CHECKPOINT_RE.match(p.name)),
                key=lambda p: p.name,
                reverse=True,
            )
            if snapshots_root.is_dir()
            else []
        )
        if not candidates:
            raise InvalidParameterError(
                f"{data_dir} holds no checkpoints; initialize it with "
                "serve(data_dir=...) first"
            )
        facade = None
        last_error: Optional[Exception] = None
        for candidate in candidates:
            try:
                with open(candidate / "wal_position.json", "r", encoding="utf-8") as handle:
                    position = int(json.load(handle)["next_seq"])
                facade = cls.load(candidate)
            except (SnapshotCorruptError, OSError, ValueError, KeyError, TypeError) as error:
                last_error = error
                continue
            break
        if facade is None:
            raise SnapshotCorruptError(
                f"no loadable checkpoint under {snapshots_root} "
                f"({len(candidates)} candidate{'s' if len(candidates) != 1 else ''} tried)"
            ) from last_error
        try:
            if fsync is not None:
                facade._spec = replace(facade._spec, wal_fsync=fsync)
            wal = WriteAheadLog.open(data_dir / "wal", fsync=facade._spec.wal_fsync)
            replayed = 0
            for record in wal.replay(after_seq=position - 1):
                payload = record.payload
                try:
                    result = facade._apply_logged(payload)
                except (SlotOutOfRangeError, AlreadyDeletedError):
                    # The pre-crash apply of this record failed the same
                    # validation after it was journaled; skipping reproduces
                    # the pre-crash state exactly.
                    continue
                facade._idempotency_remember(payload.get("key"), result)
                replayed += 1
        except Exception:
            facade.close()
            raise
        facade._data_dir = data_dir
        facade._wal = wal
        facade._recovered_records = replayed
        return facade

    def checkpoint(self) -> pathlib.Path:
        """Write a durable checkpoint and truncate the journaled prefix.

        Snapshots the primary engine into
        ``<data_dir>/snapshots/checkpoint-<N>`` where ``N`` is the WAL
        position the snapshot covers (written to a temp directory first and
        renamed, so a crash mid-checkpoint never leaves a half checkpoint
        under a valid name), deletes WAL segments that are now fully
        covered, and prunes all but the newest two checkpoints.  Returns
        the checkpoint path.
        """
        self._check_built()
        if self._wal is None:
            raise InvalidParameterError(
                "checkpoint() requires a durable facade (serve(data_dir=...) or recover)"
            )
        with self._mutation_lock:
            position = self._wal.next_seq
            snapshots_root = self._data_dir / "snapshots"
            snapshots_root.mkdir(parents=True, exist_ok=True)
            final = snapshots_root / f"checkpoint-{position:020d}"
            staging = snapshots_root / f"checkpoint-{position:020d}.tmp"
            if staging.exists():
                shutil.rmtree(staging)
            save_engine(self.engine(self.primary), staging)
            with open(staging / "wal_position.json", "w", encoding="utf-8") as handle:
                json.dump({"next_seq": position}, handle)
            if final.exists():
                shutil.rmtree(final)
            os.replace(staging, final)
            self._wal.truncate_through(position - 1)
            self._prune_checkpoints(snapshots_root)
        return final

    def durability(self) -> Dict:
        """JSON-serializable durability status (``None`` fields when not durable)."""
        wal = self._wal
        checkpoints: List[str] = []
        if self._data_dir is not None:
            snapshots_root = self._data_dir / "snapshots"
            if snapshots_root.is_dir():
                checkpoints = sorted(
                    p.name for p in snapshots_root.iterdir() if _CHECKPOINT_RE.match(p.name)
                )
        return {
            "durable": wal is not None,
            "data_dir": None if self._data_dir is None else str(self._data_dir),
            "wal_fsync": self._spec.wal_fsync,
            "wal_last_seq": None if wal is None else wal.last_seq,
            "wal_appended_records": None if wal is None else wal.appended_records,
            "wal_appended_bytes": None if wal is None else wal.appended_bytes,
            "recovered_records": self._recovered_records,
            "checkpoints": checkpoints,
        }

    def _init_data_dir(self, data_dir: pathlib.Path) -> None:
        wal_dir = data_dir / "wal"
        snapshots_root = data_dir / "snapshots"
        already = (wal_dir.is_dir() and any(wal_dir.iterdir())) or (
            snapshots_root.is_dir() and any(snapshots_root.iterdir())
        )
        if already:
            raise InvalidParameterError(
                f"data_dir {data_dir} is already initialized; resume it with "
                "FairNN.recover(data_dir) instead of serve(data_dir=...)"
            )
        data_dir.mkdir(parents=True, exist_ok=True)
        self._wal = WriteAheadLog.open(wal_dir, fsync=self._spec.wal_fsync)
        self._data_dir = data_dir
        # Checkpoint-0: the freshly indexed dataset.  Recovery always has a
        # base snapshot, even if the process dies before the first explicit
        # checkpoint.
        self.checkpoint()

    def _wal_append(self, payload: Dict) -> None:
        if self._wal is not None:
            self._wal.append(payload)

    def _apply_logged(self, payload: Dict):
        """Apply one journaled mutation without re-journaling it (replay path)."""
        tables = self._require_dynamic()
        op = payload.get("op")
        if op == "insert":
            indices = tables.insert_many(list(payload["points"]))
            for engine in self._engines.values():
                engine.note_external_mutation(inserts=len(indices))
            return list(indices)
        if op == "delete":
            tables.delete(int(payload["index"]))
            for engine in self._engines.values():
                engine.note_external_mutation(deletes=1)
            return None
        raise WALCorruptError(f"unknown WAL op {op!r}")

    def _idempotency_lookup(self, key: str):
        result = self._idempotency.get(key, _IDEMPOTENCY_MISS)
        if result is not _IDEMPOTENCY_MISS:
            self._idempotency.move_to_end(key)
        return result

    def _idempotency_remember(self, key: Optional[str], result) -> None:
        if key is None:
            return
        self._idempotency[key] = result
        self._idempotency.move_to_end(key)
        while len(self._idempotency) > _IDEMPOTENCY_CAP:
            self._idempotency.popitem(last=False)

    @staticmethod
    def _prune_checkpoints(snapshots_root: pathlib.Path) -> None:
        checkpoints = sorted(
            (p for p in snapshots_root.iterdir() if _CHECKPOINT_RE.match(p.name)),
            key=lambda p: p.name,
        )
        for stale in checkpoints[:-_CHECKPOINTS_KEPT]:
            shutil.rmtree(stale, ignore_errors=True)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_built(self) -> None:
        if not self._engines:
            raise NotFittedError("FairNN must be fitted (fit) or promoted (serve) before use")

    def _resolve_name(self, sampler: Optional[str]) -> str:
        name = self.primary if sampler is None else sampler
        if name not in self._spec.samplers:
            raise InvalidParameterError(
                f"unknown sampler name {name!r}; available: {sorted(self._spec.samplers)}"
            )
        return name

    def _build_samplers(self) -> None:
        """(Re)build every sampler object from its spec."""
        self._check_family_compatible(self._spec.samplers)
        self._samplers = {name: spec.build() for name, spec in self._spec.samplers.items()}
        self._close_engines()
        self._tables = None

    def _close_engines(self) -> None:
        """Release superseded engines (sharded ones own worker pools)."""
        for engine in self._engines.values():
            close = getattr(engine, "close", None)
            if close is not None:
                close()
        self._engines = {}

    def _lsh_samplers(self) -> Dict[str, LSHNeighborSampler]:
        return {
            name: sampler
            for name, sampler in self._samplers.items()
            if isinstance(sampler, LSHNeighborSampler)
        }

    def _table_owner(self, lsh_named: Dict[str, LSHNeighborSampler]) -> LSHNeighborSampler:
        """The sampler whose parameter rule sizes the shared tables."""
        if self.primary in lsh_named:
            return lsh_named[self.primary]
        return next(iter(lsh_named.values()))

    def _check_family_compatible(self, specs: Mapping[str, SamplerSpec]) -> None:
        """All LSH-backed sampler specs must name the same family config."""
        reference = None
        for name, spec in {**dict(self._spec.samplers), **dict(specs)}.items():
            if spec.lsh is None:
                continue
            if reference is None:
                reference = (name, spec.lsh)
            elif spec.lsh != reference[1]:
                raise InvalidParameterError(
                    f"samplers {reference[0]!r} and {name!r} name different LSH families "
                    f"({reference[1]} vs {spec.lsh}); one shared table set needs one family"
                )

    def _fit_shared(self, dataset: Dataset, dynamic: bool) -> None:
        """Build one table set from the owner's parameters; attach all LSH samplers.

        Delegates to :func:`~repro.engine.batch.build_tables` — the same
        recipe :meth:`BatchQueryEngine.build
        <repro.engine.batch.BatchQueryEngine.build>` uses, so the
        single-sampler dynamic case stays byte-compatible with it.  The only
        extension is that the tables store ranks when *any* attached sampler
        needs them, not just the owner.  A spec asking for ``n_shards > 1``
        gets a :class:`~repro.engine.sharded.ShardedLSHTables` partitioned by
        the spec's placement policy.
        """
        lsh_named = self._lsh_samplers()
        owner = self._table_owner(lsh_named)
        tables, bound_dataset = build_tables(
            owner,
            dataset,
            dynamic=dynamic,
            max_tombstone_fraction=self._spec.max_tombstone_fraction,
            use_ranks=any(sampler._use_ranks for sampler in lsh_named.values()),
            n_shards=self._spec.n_shards
            if (dynamic and (self._spec.n_shards > 1 or self._spec.executor == "process"))
            else None,
            placement=self._spec.placement,
        )
        for sampler in lsh_named.values():
            sampler.attach(tables, bound_dataset)
        self._tables = tables

    def _new_engine(self, name: str, sampler: NeighborSampler) -> BatchQueryEngine:
        kwargs = {}
        if isinstance(getattr(sampler, "tables", None), ShardedLSHTables):
            if self._spec.executor == "process":
                from repro.engine.procpool import ProcessShardedEngine

                engine_cls = ProcessShardedEngine
            else:
                engine_cls = ShardedEngine
            # Gather-budget knobs only exist on the sharded engines.
            kwargs["prefix_budget"] = self._spec.prefix_budget
            kwargs["prefix_budget_cap"] = self._spec.prefix_budget_cap
        else:
            engine_cls = BatchQueryEngine
        return engine_cls(
            sampler,
            batch_hashing=self._spec.batch_hashing,
            coalesce_duplicates=self._spec.coalesce_duplicates,
            sampler_name=name,
            spec=self._spec if name == self.primary else self._spec.samplers[name],
            **kwargs,
        )

    def _make_engines(self) -> None:
        self._engines = {
            name: self._new_engine(name, sampler) for name, sampler in self._samplers.items()
        }

    def _require_dynamic(self) -> DynamicLSHTables:
        self._check_built()
        if not isinstance(self._tables, DynamicLSHTables):
            raise InvalidParameterError(
                "index mutation needs serve() over dynamic tables "
                "(EngineSpec.dynamic=True); this facade is static"
            )
        stale = [
            name
            for name, sampler in self._samplers.items()
            if not isinstance(sampler, LSHNeighborSampler)
        ]
        if stale:
            raise InvalidParameterError(
                f"samplers {stale} are not LSH-backed and cannot track index "
                "mutations; serve them from a separate static facade or drop "
                "them from this spec before mutating"
            )
        return self._tables

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "serving" if self._serving else ("fitted" if self._engines else "unfitted")
        return f"FairNN(primary={self.primary!r}, samplers={self.sampler_names}, {state})"

"""Fairness auditing: output-frequency collection and uniformity metrics.

The paper's Figure 1 is produced by querying a sampler many times for the
same query point, counting how often each data point is reported, and
plotting the relative frequencies grouped by similarity to the query.  This
subpackage provides the counting harness (:mod:`repro.fairness.audit`), the
per-similarity aggregation (:mod:`repro.fairness.frequencies`) and scalar
uniformity measures — total variation distance from uniform, KL divergence
and a chi-square test — used in tests and reports
(:mod:`repro.fairness.metrics`).
"""

from repro.fairness.frequencies import OutputFrequencies, SimilarityBucketedFrequencies
from repro.fairness.metrics import (
    total_variation_from_uniform,
    kl_divergence_from_uniform,
    chi_square_uniformity,
    empirical_probabilities,
    gini_coefficient,
)
from repro.fairness.audit import FairnessAuditor, AuditReport, QueryAudit

__all__ = [
    "OutputFrequencies",
    "SimilarityBucketedFrequencies",
    "total_variation_from_uniform",
    "kl_divergence_from_uniform",
    "chi_square_uniformity",
    "empirical_probabilities",
    "gini_coefficient",
    "FairnessAuditor",
    "AuditReport",
    "QueryAudit",
]

"""Output-frequency bookkeeping for repeated sampling queries."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np


@dataclass
class OutputFrequencies:
    """Counts of how often each dataset index was reported for one query.

    Attributes
    ----------
    counts:
        Map from dataset index to the number of times it was returned.
    num_queries:
        Total number of repetitions performed (including those that returned
        no neighbor).
    num_failures:
        Number of repetitions that returned no neighbor (``⊥``).
    """

    counts: Counter = field(default_factory=Counter)
    num_queries: int = 0
    num_failures: int = 0

    def record(self, index: Optional[int]) -> None:
        """Record the outcome of one repetition."""
        self.num_queries += 1
        if index is None:
            self.num_failures += 1
        else:
            self.counts[int(index)] += 1

    def record_many(self, indices: Iterable[Optional[int]]) -> None:
        """Record a batch of outcomes."""
        for index in indices:
            self.record(index)

    @property
    def num_successes(self) -> int:
        """Number of repetitions that returned some neighbor."""
        return self.num_queries - self.num_failures

    def relative_frequencies(self) -> Dict[int, float]:
        """Per-point relative frequency among the successful repetitions."""
        total = self.num_successes
        if total == 0:
            return {}
        return {index: count / total for index, count in self.counts.items()}

    def counts_for(self, indices: Iterable[int]) -> np.ndarray:
        """Counts aligned with *indices* (zero for never-reported points)."""
        return np.asarray([self.counts.get(int(i), 0) for i in indices], dtype=float)


@dataclass
class SimilarityBucketedFrequencies:
    """Figure 1 aggregation: average relative frequency per similarity value.

    Each entry maps a similarity (rounded to ``decimals``) to the *average*
    relative frequency among all neighborhood points having that similarity
    to the query — exactly the quantity plotted in the paper's Figure 1
    ("each point represents the average relative frequency among all points
    having this similarity for a fixed query point").
    """

    per_similarity: Dict[float, float] = field(default_factory=dict)
    support: Dict[float, int] = field(default_factory=dict)

    @classmethod
    def from_frequencies(
        cls,
        frequencies: OutputFrequencies,
        neighborhood: Iterable[int],
        similarities: Dict[int, float],
        decimals: int = 3,
    ) -> "SimilarityBucketedFrequencies":
        """Aggregate per-point frequencies by (rounded) similarity.

        Parameters
        ----------
        frequencies:
            The per-point counts for one query.
        neighborhood:
            The ground-truth neighborhood indices; points never reported
            still enter the average with frequency zero.
        similarities:
            Map from dataset index to its similarity (or distance) to the
            query.
        """
        relative = frequencies.relative_frequencies()
        grouped: Dict[float, List[float]] = {}
        for index in neighborhood:
            similarity = round(float(similarities[int(index)]), decimals)
            grouped.setdefault(similarity, []).append(relative.get(int(index), 0.0))
        per_similarity = {sim: float(np.mean(values)) for sim, values in grouped.items()}
        support = {sim: len(values) for sim, values in grouped.items()}
        return cls(per_similarity=per_similarity, support=support)

    def as_sorted_rows(self) -> List[Tuple[float, float, int]]:
        """Rows ``(similarity, mean relative frequency, #points)`` sorted by similarity."""
        return [
            (sim, self.per_similarity[sim], self.support[sim])
            for sim in sorted(self.per_similarity)
        ]

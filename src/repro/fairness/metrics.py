"""Scalar measures of how far an output distribution is from uniform."""

from __future__ import annotations

import math
from typing import Dict, Sequence

import numpy as np

from repro.exceptions import InvalidParameterError


def empirical_probabilities(counts: Sequence[float]) -> np.ndarray:
    """Normalize raw counts into a probability vector.

    An all-zero count vector maps to the uniform distribution (no evidence of
    any bias).
    """
    counts = np.asarray(counts, dtype=float)
    if counts.ndim != 1:
        raise InvalidParameterError("counts must be a 1-D sequence")
    if np.any(counts < 0):
        raise InvalidParameterError("counts must be non-negative")
    total = counts.sum()
    if total == 0:
        if counts.size == 0:
            return counts
        return np.full(counts.size, 1.0 / counts.size)
    return counts / total


def total_variation_from_uniform(counts: Sequence[float]) -> float:
    """Total variation distance between the empirical distribution and uniform.

    Zero means perfectly uniform output over the given support; the maximum
    value ``1 - 1/n`` is attained when a single point receives all the mass.
    """
    probabilities = empirical_probabilities(counts)
    if probabilities.size == 0:
        return 0.0
    uniform = 1.0 / probabilities.size
    return float(0.5 * np.abs(probabilities - uniform).sum())


def kl_divergence_from_uniform(counts: Sequence[float]) -> float:
    """KL divergence ``D(empirical || uniform)`` in nats."""
    probabilities = empirical_probabilities(counts)
    if probabilities.size == 0:
        return 0.0
    uniform = 1.0 / probabilities.size
    mask = probabilities > 0
    return float(np.sum(probabilities[mask] * np.log(probabilities[mask] / uniform)))


def chi_square_uniformity(counts: Sequence[float]) -> Dict[str, float]:
    """Pearson chi-square test of the counts against the uniform distribution.

    Returns the statistic, the degrees of freedom and an approximate p-value
    (via the Wilson-Hilferty normal approximation of the chi-square CDF so we
    do not require scipy at runtime; scipy-based tests cross-check it).
    """
    counts = np.asarray(counts, dtype=float)
    if counts.size < 2:
        return {"statistic": 0.0, "dof": 0.0, "p_value": 1.0}
    total = counts.sum()
    if total == 0:
        return {"statistic": 0.0, "dof": float(counts.size - 1), "p_value": 1.0}
    expected = total / counts.size
    statistic = float(np.sum((counts - expected) ** 2 / expected))
    dof = float(counts.size - 1)
    p_value = _chi_square_survival(statistic, dof)
    return {"statistic": statistic, "dof": dof, "p_value": p_value}


def _chi_square_survival(statistic: float, dof: float) -> float:
    """Wilson-Hilferty approximation of ``P[Chi2_dof >= statistic]``."""
    if dof <= 0:
        return 1.0
    if statistic <= 0:
        return 1.0
    z = ((statistic / dof) ** (1.0 / 3.0) - (1.0 - 2.0 / (9.0 * dof))) / math.sqrt(2.0 / (9.0 * dof))
    return float(0.5 * math.erfc(z / math.sqrt(2.0)))


def gini_coefficient(counts: Sequence[float]) -> float:
    """Gini coefficient of the output counts (0 = perfectly even, -> 1 = concentrated).

    A complementary inequality measure: unlike total variation it is
    insensitive to the support size, which makes it convenient for comparing
    queries with very different neighborhood sizes.
    """
    counts = np.asarray(counts, dtype=float)
    if counts.size == 0:
        return 0.0
    if np.any(counts < 0):
        raise InvalidParameterError("counts must be non-negative")
    total = counts.sum()
    if total == 0:
        return 0.0
    sorted_counts = np.sort(counts)
    n = counts.size
    cumulative = np.cumsum(sorted_counts)
    return float((n + 1 - 2 * np.sum(cumulative) / cumulative[-1]) / n)

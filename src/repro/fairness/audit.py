"""The fairness auditing harness behind the Q1 experiment (Figure 1).

The auditor repeats every query many times against a sampler, records the
reported point, and summarizes the resulting output distribution both as raw
per-point frequencies and as the per-similarity aggregation the paper plots.
It also computes, per query, the total variation distance between the output
distribution over the *true* neighborhood and the uniform distribution — a
single number that captures "how unfair" a sampler is on that query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.base import NeighborSampler
from repro.distances.base import Measure
from repro.exceptions import InvalidParameterError
from repro.fairness.frequencies import OutputFrequencies, SimilarityBucketedFrequencies
from repro.fairness.metrics import (
    chi_square_uniformity,
    gini_coefficient,
    total_variation_from_uniform,
)
from repro.types import Dataset, Point


@dataclass
class QueryAudit:
    """Audit result for a single query point.

    Attributes
    ----------
    query_index:
        Index of the query in the query list (not in the dataset).
    neighborhood_size:
        Exact ``b_S(q, r)``.
    frequencies:
        Raw per-point output counts.
    by_similarity:
        The Figure 1 aggregation (mean relative frequency per similarity).
    tv_from_uniform:
        Total variation distance between the empirical output distribution
        over the exact neighborhood and the uniform distribution on it.
    gini:
        Gini coefficient of the per-neighbor output counts.
    chi_square_p_value:
        p-value of the chi-square uniformity test over the neighborhood.
    failure_rate:
        Fraction of repetitions that returned no neighbor.
    """

    query_index: int
    neighborhood_size: int
    frequencies: OutputFrequencies
    by_similarity: SimilarityBucketedFrequencies
    tv_from_uniform: float
    gini: float
    chi_square_p_value: float
    failure_rate: float


@dataclass
class AuditReport:
    """Aggregate audit over a set of queries for one sampler."""

    sampler_name: str
    radius: float
    repetitions: int
    queries: List[QueryAudit] = field(default_factory=list)

    @property
    def mean_tv(self) -> float:
        """Mean per-query total variation distance from uniform."""
        if not self.queries:
            return 0.0
        return float(np.mean([q.tv_from_uniform for q in self.queries]))

    @property
    def mean_gini(self) -> float:
        """Mean per-query Gini coefficient."""
        if not self.queries:
            return 0.0
        return float(np.mean([q.gini for q in self.queries]))

    @property
    def mean_failure_rate(self) -> float:
        """Mean fraction of repetitions returning no neighbor."""
        if not self.queries:
            return 0.0
        return float(np.mean([q.failure_rate for q in self.queries]))

    def summary_rows(self) -> List[Dict[str, float]]:
        """One summary dict per query (used by the report printer)."""
        return [
            {
                "query": audit.query_index,
                "neighborhood": audit.neighborhood_size,
                "tv": audit.tv_from_uniform,
                "gini": audit.gini,
                "chi2_p": audit.chi_square_p_value,
                "failures": audit.failure_rate,
            }
            for audit in self.queries
        ]


class FairnessAuditor:
    """Repeat queries against a sampler and audit the output distribution.

    Parameters
    ----------
    dataset:
        The indexed dataset (needed to compute the exact neighborhoods).
    measure:
        The measure used by the sampler.
    radius:
        The near threshold used by the sampler.
    repetitions:
        Number of independent repetitions per query (the paper uses 26 000;
        tests and benchmarks use fewer).
    """

    def __init__(
        self,
        dataset: Dataset,
        measure: Measure,
        radius: float,
        repetitions: int = 1000,
    ):
        if repetitions < 1:
            raise InvalidParameterError(f"repetitions must be >= 1, got {repetitions}")
        self.dataset = dataset
        self.measure = measure
        self.radius = float(radius)
        self.repetitions = int(repetitions)

    # ------------------------------------------------------------------
    def audit_query(
        self,
        sampler: NeighborSampler,
        query: Point,
        query_index: int = 0,
        exclude_index: Optional[int] = None,
    ) -> QueryAudit:
        """Audit one query point against *sampler*.

        ``exclude_index`` removes the query itself from the ground-truth
        neighborhood when the query is a dataset point (the recommendation
        experiments query with existing users and should not count the user
        as their own neighbor).
        """
        values = self.measure.values_to_query(self.dataset, query)
        neighborhood = np.flatnonzero(self.measure.within_mask(values, self.radius))
        if exclude_index is not None:
            neighborhood = neighborhood[neighborhood != exclude_index]

        frequencies = OutputFrequencies()
        for _ in range(self.repetitions):
            index = sampler.sample(query, exclude_index=exclude_index)
            if exclude_index is not None and index == exclude_index:
                # Defensive: a sampler that ignores exclude_index should not
                # pollute the audited distribution with the query itself.
                frequencies.record(None)
            else:
                frequencies.record(index)

        similarity_of = {int(i): float(values[int(i)]) for i in neighborhood}
        by_similarity = SimilarityBucketedFrequencies.from_frequencies(
            frequencies, neighborhood, similarity_of
        )
        neighbor_counts = frequencies.counts_for(neighborhood)
        tv = total_variation_from_uniform(neighbor_counts) if neighborhood.size else 0.0
        gini = gini_coefficient(neighbor_counts) if neighborhood.size else 0.0
        chi2 = chi_square_uniformity(neighbor_counts) if neighborhood.size else {"p_value": 1.0}
        return QueryAudit(
            query_index=query_index,
            neighborhood_size=int(neighborhood.size),
            frequencies=frequencies,
            by_similarity=by_similarity,
            tv_from_uniform=tv,
            gini=gini,
            chi_square_p_value=float(chi2["p_value"]),
            failure_rate=frequencies.num_failures / max(1, frequencies.num_queries),
        )

    def audit(
        self,
        sampler: NeighborSampler,
        queries: Sequence[Point],
        sampler_name: Optional[str] = None,
        exclude_indices: Optional[Sequence[Optional[int]]] = None,
    ) -> AuditReport:
        """Audit a list of query points and return the aggregate report."""
        report = AuditReport(
            sampler_name=sampler_name or type(sampler).__name__,
            radius=self.radius,
            repetitions=self.repetitions,
        )
        for position, query in enumerate(queries):
            exclude = exclude_indices[position] if exclude_indices is not None else None
            report.queries.append(
                self.audit_query(sampler, query, query_index=position, exclude_index=exclude)
            )
        return report

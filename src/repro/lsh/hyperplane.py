"""Random-hyperplane (SimHash) family for angular / cosine similarity."""

from __future__ import annotations

from typing import Hashable, List

import numpy as np

from repro.distances.angular import CosineSimilarity
from repro.exceptions import InvalidParameterError
from repro.lsh.family import HashFunction, LSHFamily
from repro.types import Dataset, Point
from repro.registry import register_lsh_family


class HyperplaneHashFunction(HashFunction):
    """Sign of the projection onto a random Gaussian direction."""

    def __init__(self, direction: np.ndarray):
        self._direction = np.asarray(direction, dtype=float)

    def __call__(self, point: Point) -> Hashable:
        return int(np.dot(np.asarray(point, dtype=float), self._direction) >= 0.0)

    def hash_dataset(self, dataset: Dataset) -> List[Hashable]:
        data = np.asarray(dataset, dtype=float)
        return [int(v) for v in (data @ self._direction >= 0.0)]


@register_lsh_family("hyperplane")
class HyperplaneFamily(LSHFamily):
    """Charikar's SimHash: collision probability ``1 - theta / pi``.

    The family is stated here as sensitive to *cosine similarity* ``s``; the
    collision probability is ``1 - arccos(s) / pi``.
    """

    def __init__(self, dim: int):
        if dim < 1:
            raise InvalidParameterError(f"dimension must be >= 1, got {dim}")
        self.dim = int(dim)
        self.measure = CosineSimilarity()

    def sample(self, rng: np.random.Generator) -> HyperplaneHashFunction:
        return HyperplaneHashFunction(rng.standard_normal(self.dim))

    def collision_probability(self, value: float) -> float:
        if not -1.0 <= value <= 1.0:
            raise InvalidParameterError(f"cosine similarity must be in [-1, 1], got {value}")
        return 1.0 - float(np.arccos(value)) / np.pi

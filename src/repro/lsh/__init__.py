"""Locality Sensitive Hashing substrate.

The fair samplers of the paper use LSH as a black box: any
``(r, cr, p1, p2)``-sensitive family can be plugged in.  This subpackage
provides the families used by the paper's experiments (MinHash and the 1-bit
minwise scheme of Li and König for Jaccard similarity) as well as the
classical families for Euclidean, angular and Hamming space, AND-composition,
parameter selection, and the hash-table layer with rank-aware buckets that
Sections 3 and 4 build on.
"""

from repro.lsh.family import LSHFamily, HashFunction, ConcatenatedFamily
from repro.lsh.minhash import MinHashFamily, OneBitMinHashFamily
from repro.lsh.hyperplane import HyperplaneFamily
from repro.lsh.pstable import PStableFamily
from repro.lsh.bitsampling import BitSamplingFamily
from repro.lsh.params import LSHParameters, compute_rho, select_parameters
from repro.lsh.tables import LSHTables

__all__ = [
    "LSHFamily",
    "HashFunction",
    "ConcatenatedFamily",
    "MinHashFamily",
    "OneBitMinHashFamily",
    "HyperplaneFamily",
    "PStableFamily",
    "BitSamplingFamily",
    "LSHParameters",
    "compute_rho",
    "select_parameters",
    "LSHTables",
]

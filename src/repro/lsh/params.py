"""Parameter selection for LSH-based data structures.

Section 2.2 of the paper fixes the standard recipe: concatenate ``K`` base
functions so that the far-point collision probability drops to ``p2^K <= 1/n``
(equivalently, the expected number of far collisions per table is at most a
small constant), then repeat with ``L = Theta(p1^{-K} log n)`` independent
tables so that every near point collides with the query in at least one table
with high probability.  The experimental section uses a concrete instance of
this recipe: "we set K such that we expect no more than 5 points with Jaccard
similarity at most 0.1 to have the same hash value as the query, and L such
that with probability at least 99% a given point with similarity at least r
is present in the L buckets".

This module implements both the generic rule and the paper's concrete
experimental rule, plus the quality exponent ``rho = log(p1) / log(p2)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import InvalidParameterError
from repro.lsh.family import LSHFamily


@dataclass(frozen=True)
class LSHParameters:
    """Resolved LSH parameters for a concrete dataset and thresholds.

    Attributes
    ----------
    k:
        Number of concatenated base hash functions per table (AND).
    l:
        Number of independent hash tables (OR repetitions).
    p_near:
        Collision probability of a point exactly at the near threshold under
        one concatenated function, i.e. ``p1^k``.
    p_far:
        Collision probability of a point exactly at the far threshold under
        one concatenated function, i.e. ``p2^k``.
    recall:
        Probability that a single near point collides with the query in at
        least one of the ``l`` tables: ``1 - (1 - p1^k)^l``.
    expected_far_collisions:
        Expected number of far points (out of ``n``) per table colliding with
        the query, ``n * p2^k``.
    """

    k: int
    l: int
    p_near: float
    p_far: float
    recall: float
    expected_far_collisions: float


def compute_rho(p1: float, p2: float) -> float:
    """Quality ``rho = log(p1) / log(p2)`` of an LSH family (Definition 3)."""
    if not 0.0 < p2 < 1.0 or not 0.0 < p1 < 1.0:
        raise InvalidParameterError(
            f"collision probabilities must lie in (0, 1), got p1={p1}, p2={p2}"
        )
    if p1 < p2:
        raise InvalidParameterError(f"p1 must be at least p2, got p1={p1} < p2={p2}")
    return math.log(p1) / math.log(p2)


def concatenation_length_for_far_collisions(
    p_far: float, n: int, max_expected_collisions: float = 1.0
) -> int:
    """Smallest K with ``n * p_far^K <= max_expected_collisions``.

    This is the generic ``p2^K <= 1/n`` rule generalized to an arbitrary
    budget of expected far collisions (the paper's experiments use a budget
    of 5 at similarity 0.1).
    """
    if n < 1:
        raise InvalidParameterError(f"n must be >= 1, got {n}")
    if max_expected_collisions <= 0:
        raise InvalidParameterError(
            f"max_expected_collisions must be positive, got {max_expected_collisions}"
        )
    if not 0.0 < p_far < 1.0:
        raise InvalidParameterError(f"p_far must be in (0, 1), got {p_far}")
    if n <= max_expected_collisions:
        return 1
    k = math.log(max_expected_collisions / n) / math.log(p_far)
    return max(1, int(math.ceil(k - 1e-12)))


def repetitions_for_recall(p_near_k: float, recall: float = 0.99) -> int:
    """Smallest L with ``1 - (1 - p_near_k)^L >= recall``."""
    if not 0.0 < p_near_k <= 1.0:
        raise InvalidParameterError(f"p_near_k must be in (0, 1], got {p_near_k}")
    if not 0.0 < recall < 1.0:
        raise InvalidParameterError(f"recall must be in (0, 1), got {recall}")
    if p_near_k >= 1.0:
        return 1
    l = math.log(1.0 - recall) / math.log(1.0 - p_near_k)
    return max(1, int(math.ceil(l - 1e-12)))


def select_parameters(
    family: LSHFamily,
    near_threshold: float,
    far_threshold: float,
    n: int,
    recall: float = 0.99,
    max_expected_far_collisions: float = 1.0,
) -> LSHParameters:
    """Select ``(K, L)`` for *family* on a dataset of *n* points.

    Parameters
    ----------
    family:
        The base LSH family (not yet concatenated).
    near_threshold, far_threshold:
        The ``r`` and ``cr`` thresholds expressed in the family's measure.
        For similarity measures ``far_threshold < near_threshold``; for
        distance measures ``far_threshold > near_threshold``.
    n:
        Dataset size.
    recall:
        Target probability that a single point at the near threshold appears
        in at least one of the ``L`` probed buckets.
    max_expected_far_collisions:
        Budget for the expected number of points at the far threshold
        colliding with the query per table.
    """
    p1 = family.collision_probability(near_threshold)
    p2 = family.collision_probability(far_threshold)
    if p1 <= p2:
        raise InvalidParameterError(
            "near-threshold collision probability must exceed the far-threshold one; "
            f"got p1={p1:.4f} at {near_threshold} and p2={p2:.4f} at {far_threshold}"
        )
    k = concatenation_length_for_far_collisions(p2, n, max_expected_far_collisions)
    p_near_k = p1**k
    p_far_k = p2**k
    l = repetitions_for_recall(p_near_k, recall)
    achieved_recall = 1.0 - (1.0 - p_near_k) ** l
    return LSHParameters(
        k=k,
        l=l,
        p_near=p_near_k,
        p_far=p_far_k,
        recall=achieved_recall,
        expected_far_collisions=n * p_far_k,
    )

"""Bit-sampling LSH family for Hamming distance (Indyk-Motwani)."""

from __future__ import annotations

from typing import Hashable, List

import numpy as np

from repro.distances.hamming import HammingDistance
from repro.exceptions import InvalidParameterError
from repro.lsh.family import HashFunction, LSHFamily
from repro.types import Dataset, Point
from repro.registry import register_lsh_family


class BitSamplingHashFunction(HashFunction):
    """Projection onto a single random coordinate of a binary vector."""

    def __init__(self, coordinate: int):
        self._coordinate = int(coordinate)

    def __call__(self, point: Point) -> Hashable:
        return int(np.asarray(point)[self._coordinate])

    def hash_dataset(self, dataset: Dataset) -> List[Hashable]:
        data = np.asarray(dataset)
        return [int(v) for v in data[:, self._coordinate]]


@register_lsh_family("bitsampling")
class BitSamplingFamily(LSHFamily):
    """The original Indyk-Motwani family: sample one coordinate uniformly.

    For binary vectors of dimension ``dim`` at Hamming distance ``d`` the
    collision probability is ``1 - d / dim``.
    """

    def __init__(self, dim: int):
        if dim < 1:
            raise InvalidParameterError(f"dimension must be >= 1, got {dim}")
        self.dim = int(dim)
        self.measure = HammingDistance()

    def sample(self, rng: np.random.Generator) -> BitSamplingHashFunction:
        return BitSamplingHashFunction(int(rng.integers(0, self.dim)))

    def collision_probability(self, value: float) -> float:
        if not 0 <= value <= self.dim:
            raise InvalidParameterError(
                f"Hamming distance must be in [0, {self.dim}], got {value}"
            )
        return 1.0 - float(value) / self.dim

"""LSH hash tables with rank-aware buckets.

This is the storage layer shared by all LSH-based samplers:

* the standard LSH query needs the multiset of points colliding with the
  query in each of the ``L`` tables;
* the Section 3 sampler additionally needs the points of each bucket sorted
  by their random *rank* so that the lowest-ranked near point can be found by
  an in-order scan;
* the Section 4 sampler needs *rank-range* queries inside each colliding
  bucket ("all points of this bucket with rank in ``[lo, hi)``") and a
  mergeable count-distinct sketch per bucket.

Buckets are stored as numpy index arrays.  When ranks are supplied the arrays
are sorted by rank so both the ordered scan and the range query (via
``numpy.searchsorted`` on the parallel rank array) are cheap.  The paper
suggests a balanced binary search tree per bucket; for a static index the
sorted-array representation has identical asymptotics with far smaller
constants (see the ablation benchmark).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence

import numpy as np

from repro.exceptions import EmptyDatasetError, InvalidParameterError
from repro.lsh.family import HashFunction, LSHFamily
from repro.rng import SeedLike, ensure_rng
from repro.types import Dataset, Point


def point_digest(point: Point) -> Optional[Hashable]:
    """A hashable digest of *point*, or ``None`` when it has no cheap one.

    Used wherever per-query results are memoised (the Section 4 sampler's
    sketch-estimate cache, the serving engine's primed-key cache).  Digests of
    distinct points may in principle collide only for numpy arrays that share
    dtype, shape and raw bytes, i.e. equal arrays — which is exactly the
    equality the caches want.
    """
    if isinstance(point, (frozenset, tuple, str, bytes, int)):
        return point
    if isinstance(point, set):
        return frozenset(point)
    if isinstance(point, np.ndarray):
        return (point.dtype.str, point.shape, point.tobytes())
    return None


class Bucket:
    """A single hash bucket: indices of the points hashing to one key.

    When ranks are available, ``indices`` is sorted by increasing rank and
    ``ranks`` holds the corresponding rank values (so ``ranks`` is sorted
    ascending).  Without ranks, ``indices`` keeps insertion (dataset) order
    and ``ranks`` is ``None``.
    """

    __slots__ = ("indices", "ranks")

    def __init__(self, indices: np.ndarray, ranks: Optional[np.ndarray] = None):
        self.indices = indices
        self.ranks = ranks

    def __len__(self) -> int:
        return int(self.indices.size)

    def rank_range(self, lo: int, hi: int) -> np.ndarray:
        """Indices of bucket members with rank in ``[lo, hi)``.

        Requires the bucket to have been built with ranks.
        """
        if self.ranks is None:
            raise InvalidParameterError("bucket was built without ranks; rank_range unavailable")
        left = int(np.searchsorted(self.ranks, lo, side="left"))
        right = int(np.searchsorted(self.ranks, hi, side="left"))
        return self.indices[left:right]

    @classmethod
    def from_members(cls, indices: np.ndarray, ranks: Optional[np.ndarray]) -> "Bucket":
        """Build a bucket from unsorted members, rank-sorting when ranks exist."""
        indices = np.asarray(indices, dtype=np.intp)
        if ranks is None:
            return cls(indices)
        ranks = np.asarray(ranks)
        order = np.argsort(ranks, kind="stable")
        return cls(indices[order], ranks[order])

    def inserted(self, index: int, rank: Optional[int]) -> "Bucket":
        """A new bucket with one member added, preserving rank order.

        With ranks, the member is spliced into its sorted position; without,
        it is appended (insertion order).  This is the single-point update
        primitive shared by the dynamic table layer.
        """
        if self.ranks is None:
            if rank is not None:
                raise InvalidParameterError("cannot insert a ranked member into a rankless bucket")
            return Bucket(np.append(self.indices, np.intp(index)))
        if rank is None:
            raise InvalidParameterError("bucket has ranks; a rank is required to insert")
        position = int(np.searchsorted(self.ranks, rank, side="left"))
        return Bucket(
            np.insert(self.indices, position, np.intp(index)),
            np.insert(self.ranks, position, rank),
        )

    def filtered(self, keep: np.ndarray) -> "Bucket":
        """A new bucket keeping only the members where *keep* is True."""
        return Bucket(
            self.indices[keep],
            None if self.ranks is None else self.ranks[keep],
        )


def _integer_key_codes(keys: Sequence[Hashable]) -> Optional[np.ndarray]:
    """*keys* as an integer code array (1-D scalars / 2-D tuple rows), or ``None``.

    Only integer scalar keys and fixed-width tuples of integers qualify —
    exactly the shapes the built-in hash families emit.  Anything else (mixed
    widths, strings, objects) returns ``None`` and the caller keeps the
    generic dict grouping.
    """
    if len(keys) == 0:
        return None
    try:
        codes = np.asarray(keys)
    except (ValueError, OverflowError):
        return None
    if codes.dtype.kind not in "iu" or codes.ndim not in (1, 2):
        return None
    return codes


class LSHTables:
    """``L`` independent LSH hash tables over a dataset.

    Parameters
    ----------
    family:
        The (possibly concatenated) LSH family used for each table.
    l:
        Number of independent tables.
    seed:
        Seed controlling the choice of the ``l`` hash functions.
    """

    def __init__(self, family: LSHFamily, l: int, seed: SeedLike = None, *, _functions=None):
        if l < 1:
            raise InvalidParameterError(f"number of tables must be >= 1, got {l}")
        self.family = family
        self.l = int(l)
        self._rng = ensure_rng(seed)
        # _functions is the snapshot-restore path: it injects previously drawn
        # hash functions instead of sampling (and discarding) fresh ones.
        if _functions is not None:
            self._functions: List[HashFunction] = list(_functions)
        else:
            self._functions = [self.family.sample(self._rng) for _ in range(self.l)]
        # Families that support it provide a vectorized evaluator over all L
        # functions at once; pure-Python hashing loops are the bottleneck
        # otherwise (hundreds of tables times thousands of points).
        self._batch_hasher = self.family.make_batch_hasher(self._functions)
        self._tables: List[Dict[Hashable, Bucket]] = []
        self._n = 0
        self._ranks: Optional[np.ndarray] = None
        self._fitted = False
        #: Monotone counter of mutation events (static tables never move it).
        #: Samplers remember the epoch they last synchronized at, so a
        #: consumer that receives an empty delta can tell "nothing changed"
        #: apart from "another consumer drained the record first".
        self.mutation_epoch = 0
        # Primed query-key cache (see prime_key_cache): digest -> per-table keys.
        self._key_cache: Dict[Hashable, List[Hashable]] = {}
        self.key_cache_hits = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def fit(self, dataset: Dataset, ranks: Optional[np.ndarray] = None) -> "LSHTables":
        """Hash every dataset point into each of the ``L`` tables.

        Parameters
        ----------
        dataset:
            The point set ``S``.
        ranks:
            Optional array where ``ranks[i]`` is the rank of point ``i``
            under the random permutation (Sections 3 and 4).  When given,
            buckets are sorted by rank.
        """
        n = len(dataset)
        if n == 0:
            raise EmptyDatasetError("cannot build LSH tables over an empty dataset")
        if ranks is not None:
            ranks = np.asarray(ranks)
            if ranks.shape != (n,):
                raise InvalidParameterError(
                    f"ranks must have shape ({n},), got {ranks.shape}"
                )
        self._n = n
        self._ranks = ranks
        self._tables = []
        if self._batch_hasher is not None:
            all_keys = self._batch_hasher.keys_for_dataset(dataset)
        else:
            all_keys = [function.hash_dataset(dataset) for function in self._functions]
        for keys in all_keys:
            self._tables.append(self._build_table(keys, ranks))
        self._fitted = True
        return self

    @staticmethod
    def _build_table(keys: Sequence[Hashable], ranks: Optional[np.ndarray]) -> Dict[Hashable, Bucket]:
        """Group per-point bucket keys into one table of rank-sorted buckets.

        Integer key codes — scalars (``K = 1``) or fixed-width tuples of
        integers (concatenated families) — are grouped with one stable
        argsort over the whole key array instead of a Python dict insert per
        point; members end up in ascending dataset order within each bucket
        exactly as the dict grouping produced.  Non-integer key types fall
        back to the dict path.
        """
        codes = _integer_key_codes(keys)
        if codes is None:
            groups: Dict[Hashable, List[int]] = {}
            for index, key in enumerate(keys):
                groups.setdefault(key, []).append(index)
            table: Dict[Hashable, Bucket] = {}
            for key, members in groups.items():
                indices = np.asarray(members, dtype=np.intp)
                table[key] = Bucket.from_members(indices, None if ranks is None else ranks[indices])
            return table

        if codes.ndim == 1:
            order = np.argsort(codes, kind="stable")
            sorted_codes = codes[order]
            new_group = sorted_codes[1:] != sorted_codes[:-1]
        else:
            order = np.lexsort(codes.T[::-1])  # row-lexicographic, stable
            sorted_codes = codes[order]
            new_group = np.any(sorted_codes[1:] != sorted_codes[:-1], axis=1)
        starts = np.concatenate(([0], np.flatnonzero(new_group) + 1))
        ends = np.concatenate((starts[1:], [codes.shape[0]]))
        members_in_order = order.astype(np.intp)
        table = {}
        for start, end in zip(starts, ends):
            members = members_in_order[start:end]
            row = sorted_codes[start]
            key = int(row) if codes.ndim == 1 else tuple(int(part) for part in row)
            table[key] = Bucket.from_members(members, None if ranks is None else ranks[members])
        return table

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_points(self) -> int:
        """Number of indexed points."""
        return self._n

    @property
    def num_tables(self) -> int:
        """Number of hash tables ``L``."""
        return self.l

    @property
    def num_live(self) -> int:
        """Number of live indexed points (static tables: every point).

        Mutable subclasses override this to exclude tombstoned slots, so
        samplers can size budgets and parameter records off the data actually
        being served rather than every slot ever allocated.
        """
        return self._n

    def ensure_clean_buckets(self) -> None:
        """Guarantee buckets reference live points only (static: always true).

        Samplers that derive per-bucket state (e.g. the Section 4
        count-distinct sketches) call this before rebuilding, so the contract
        lives in the table API; mutable subclasses override it to sweep
        pending tombstones.
        """

    def drain_delta(self):
        """Return and reset the mutations recorded since the last drain.

        Static tables never mutate and have nothing to report: they return
        ``None``, which tells :meth:`~repro.core.base.LSHNeighborSampler.notify_update`
        consumers that no structured delta is available and a full rebuild of
        derived state is the only safe course.
        :class:`~repro.engine.dynamic.DynamicLSHTables` overrides this to
        return a :class:`~repro.engine.dynamic.MutationDelta` (possibly
        empty), enabling incremental maintenance.
        """
        return None

    def discard_delta(self) -> None:
        """Drop any unconsumed mutation record without the cost of resolving it.

        Static tables record nothing, so this is a no-op; mutable subclasses
        override it.  Samplers that do not consume deltas call this from
        ``notify_update`` so the record can neither accumulate unboundedly
        nor charge them for resolution work they would throw away.
        """

    @property
    def ranks(self) -> Optional[np.ndarray]:
        """The rank array used at construction time, if any."""
        return self._ranks

    @property
    def rank_domain(self) -> int:
        """Exclusive upper bound of the stored rank values.

        Static tables use a permutation of ``0 .. n-1``; mutable tables draw
        ranks from a much larger fixed domain so that inserts stay
        exchangeable with existing points (see
        :class:`~repro.engine.dynamic.DynamicLSHTables`).  Rank-segment
        queries (Section 4) must partition this domain, not ``n``.
        """
        return self._n

    def bucket_sizes(self) -> List[Dict[Hashable, int]]:
        """Size of every bucket per table (useful for diagnostics/tests)."""
        self._check_fitted()
        return [{key: len(bucket) for key, bucket in table.items()} for table in self._tables]

    def total_stored_references(self) -> int:
        """Total number of point references stored across all tables."""
        self._check_fitted()
        return sum(len(bucket) for table in self._tables for bucket in table.values())

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query_keys(self, query: Point) -> List[Hashable]:
        """The bucket key of *query* in each table.

        Keys primed via :meth:`prime_key_cache` are served from the cache, so
        batched execution pays for hashing once per query even though the
        samplers call this method internally.
        """
        if self._key_cache:
            digest = point_digest(query)
            if digest is not None:
                cached = self._key_cache.get(digest)
                if cached is not None:
                    self.key_cache_hits += 1
                    return cached
        if self._batch_hasher is not None:
            return self._batch_hasher.keys_for_point(query)
        return [function(query) for function in self._functions]

    def query_keys_many(self, queries: Sequence[Point]) -> List[List[Hashable]]:
        """Per query, the bucket key in each table — hashed in one batch.

        Uses the family's :class:`~repro.lsh.family.BatchHasher` to evaluate
        all ``L`` functions over the whole query batch with vectorized numpy
        operations; families without one fall back to per-query hashing.
        """
        if len(queries) == 0:
            return []
        if self._batch_hasher is not None:
            return self._batch_hasher.keys_for_points(queries)
        return [self.query_keys(query) for query in queries]

    def prime_key_cache(self, queries: Sequence[Point], keys_per_query: Sequence[List[Hashable]]) -> None:
        """Pre-populate the query-key cache (used by the batch engine).

        Queries without a hashable digest are silently skipped; they fall
        back to per-query hashing.
        """
        if len(queries) != len(keys_per_query):
            raise InvalidParameterError(
                f"got {len(queries)} queries but {len(keys_per_query)} key lists"
            )
        for query, keys in zip(queries, keys_per_query):
            digest = point_digest(query)
            if digest is not None:
                self._key_cache[digest] = list(keys)

    def clear_key_cache(self) -> None:
        """Drop all primed query keys (hit counters are preserved)."""
        self._key_cache.clear()

    def query_buckets(self, query: Point, keys: Optional[List[Hashable]] = None) -> List[Bucket]:
        """The (possibly empty) bucket colliding with *query* in each table.

        Parameters
        ----------
        query:
            The query point.
        keys:
            Optional pre-computed per-table bucket keys for *query* (as
            returned by :meth:`query_keys`).  Callers that already hold the
            keys pass them to avoid hashing the query a second time.
        """
        self._check_fitted()
        empty = Bucket(np.empty(0, dtype=np.intp), None if self._ranks is None else np.empty(0, dtype=self._ranks.dtype))
        if keys is None:
            keys = self.query_keys(query)
        return [table.get(key, empty) for table, key in zip(self._tables, keys)]

    def query_candidates(self, query: Point) -> np.ndarray:
        """Unique indices of all points colliding with *query* in any table."""
        parts = [bucket.indices for bucket in self.query_buckets(query) if bucket.indices.size]
        return self.distinct_indices(parts)

    def distinct_indices(self, parts: Sequence[np.ndarray]) -> np.ndarray:
        """Sorted distinct dataset indices across *parts* (bucket arrays).

        Large multisets (relative to the slot range) are deduplicated with a
        flag-array pass — O(n + multiset) instead of the
        O(multiset log multiset) sort ``np.unique`` pays, which matters when
        large-bucket queries produce multisets of tens of thousands of
        references.  Small multisets over big indexes keep the ``np.unique``
        path, whose cost does not scale with ``n``.  Output order
        (ascending) is identical either way.
        """
        if not parts:
            return np.empty(0, dtype=np.intp)
        total = sum(part.size for part in parts)
        if 8 * total < self._n:
            return np.unique(np.concatenate(parts)).astype(np.intp, copy=False)
        seen = np.zeros(self._n, dtype=bool)
        for part in parts:
            seen[part] = True
        return np.flatnonzero(seen).astype(np.intp, copy=False)

    def query_candidates_multiset(self, query: Point) -> np.ndarray:
        """Indices of colliding points *with* multiplicity across tables."""
        buckets = self.query_buckets(query)
        if not buckets:
            return np.empty(0, dtype=np.intp)
        return np.concatenate([b.indices for b in buckets])

    def colliding_view(self, query: Point) -> tuple:
        """Rank-sorted ``(ranks, indices)`` of all points colliding with *query*.

        The concatenation of the ``L`` colliding buckets, sorted by rank, with
        multiplicity (a point colliding in several tables appears once per
        table).  This is the single array pass that replaces per-bucket Python
        loops in both the Section 4 rejection sampler and the batch engine's
        candidate-gathering stage; consumers de-duplicate after slicing.
        """
        self._check_fitted()
        if self._ranks is None:
            raise InvalidParameterError("tables were built without ranks; no rank-sorted view")
        rank_parts = []
        index_parts = []
        # One pass, attribute access only: with hundreds of tables this loop
        # is hot enough that Bucket.__len__ calls and empty-bucket
        # placeholders show up in serving profiles.
        for bucket in self.query_buckets(query):
            if bucket.indices.size:
                rank_parts.append(bucket.ranks)
                index_parts.append(bucket.indices)
        if not rank_parts:
            return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.intp))
        ranks = np.concatenate(rank_parts)
        indices = np.concatenate(index_parts)
        order = np.argsort(ranks, kind="stable")
        return (ranks[order], indices[order])

    def rank_range_candidates(self, query: Point, lo: int, hi: int) -> np.ndarray:
        """Unique colliding indices with rank in ``[lo, hi)`` (Section 4, step 3b)."""
        self._check_fitted()
        if self._ranks is None:
            raise InvalidParameterError("tables were built without ranks; rank-range queries unavailable")
        parts = [bucket.rank_range(lo, hi) for bucket in self.query_buckets(query)]
        parts = [p for p in parts if p.size]
        if not parts:
            return np.empty(0, dtype=np.intp)
        return np.unique(np.concatenate(parts))

    def collision_counts(self, query: Point) -> Dict[int, int]:
        """Map point index -> number of tables in which it collides with *query*."""
        parts = [bucket.indices for bucket in self.query_buckets(query) if bucket.indices.size]
        if not parts:
            return {}
        stacked = np.concatenate(parts)
        if 8 * stacked.size < self._n:
            # Small multiset over a big index: avoid the n-length bincount.
            unique, counts = np.unique(stacked, return_counts=True)
            return {int(index): int(count) for index, count in zip(unique, counts)}
        counts = np.bincount(stacked, minlength=self._n)
        colliding = np.flatnonzero(counts)
        return {int(index): int(counts[index]) for index in colliding}

    # ------------------------------------------------------------------
    def _check_fitted(self) -> None:
        if not self._fitted:
            raise EmptyDatasetError("LSHTables.fit must be called before querying")

"""LSH hash tables with rank-aware buckets.

This is the storage layer shared by all LSH-based samplers:

* the standard LSH query needs the multiset of points colliding with the
  query in each of the ``L`` tables;
* the Section 3 sampler additionally needs the points of each bucket sorted
  by their random *rank* so that the lowest-ranked near point can be found by
  an in-order scan;
* the Section 4 sampler needs *rank-range* queries inside each colliding
  bucket ("all points of this bucket with rank in ``[lo, hi)``") and a
  mergeable count-distinct sketch per bucket.

Buckets are stored as numpy index arrays.  When ranks are supplied the arrays
are sorted by rank so both the ordered scan and the range query (via
``numpy.searchsorted`` on the parallel rank array) are cheap.  The paper
suggests a balanced binary search tree per bucket; for a static index the
sorted-array representation has identical asymptotics with far smaller
constants (see the ablation benchmark).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Sequence

import numpy as np

from repro.exceptions import EmptyDatasetError, InvalidParameterError
from repro.lsh.family import HashFunction, LSHFamily
from repro.rng import SeedLike, ensure_rng
from repro.types import Dataset, Point


class Bucket:
    """A single hash bucket: indices of the points hashing to one key.

    When ranks are available, ``indices`` is sorted by increasing rank and
    ``ranks`` holds the corresponding rank values (so ``ranks`` is sorted
    ascending).  Without ranks, ``indices`` keeps insertion (dataset) order
    and ``ranks`` is ``None``.
    """

    __slots__ = ("indices", "ranks")

    def __init__(self, indices: np.ndarray, ranks: Optional[np.ndarray] = None):
        self.indices = indices
        self.ranks = ranks

    def __len__(self) -> int:
        return int(self.indices.size)

    def rank_range(self, lo: int, hi: int) -> np.ndarray:
        """Indices of bucket members with rank in ``[lo, hi)``.

        Requires the bucket to have been built with ranks.
        """
        if self.ranks is None:
            raise InvalidParameterError("bucket was built without ranks; rank_range unavailable")
        left = int(np.searchsorted(self.ranks, lo, side="left"))
        right = int(np.searchsorted(self.ranks, hi, side="left"))
        return self.indices[left:right]


class LSHTables:
    """``L`` independent LSH hash tables over a dataset.

    Parameters
    ----------
    family:
        The (possibly concatenated) LSH family used for each table.
    l:
        Number of independent tables.
    seed:
        Seed controlling the choice of the ``l`` hash functions.
    """

    def __init__(self, family: LSHFamily, l: int, seed: SeedLike = None):
        if l < 1:
            raise InvalidParameterError(f"number of tables must be >= 1, got {l}")
        self.family = family
        self.l = int(l)
        self._rng = ensure_rng(seed)
        self._functions: List[HashFunction] = [self.family.sample(self._rng) for _ in range(self.l)]
        # Families that support it provide a vectorized evaluator over all L
        # functions at once; pure-Python hashing loops are the bottleneck
        # otherwise (hundreds of tables times thousands of points).
        self._batch_hasher = self.family.make_batch_hasher(self._functions)
        self._tables: List[Dict[Hashable, Bucket]] = []
        self._n = 0
        self._ranks: Optional[np.ndarray] = None
        self._fitted = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def fit(self, dataset: Dataset, ranks: Optional[np.ndarray] = None) -> "LSHTables":
        """Hash every dataset point into each of the ``L`` tables.

        Parameters
        ----------
        dataset:
            The point set ``S``.
        ranks:
            Optional array where ``ranks[i]`` is the rank of point ``i``
            under the random permutation (Sections 3 and 4).  When given,
            buckets are sorted by rank.
        """
        n = len(dataset)
        if n == 0:
            raise EmptyDatasetError("cannot build LSH tables over an empty dataset")
        if ranks is not None:
            ranks = np.asarray(ranks)
            if ranks.shape != (n,):
                raise InvalidParameterError(
                    f"ranks must have shape ({n},), got {ranks.shape}"
                )
        self._n = n
        self._ranks = ranks
        self._tables = []
        if self._batch_hasher is not None:
            all_keys = self._batch_hasher.keys_for_dataset(dataset)
        else:
            all_keys = [function.hash_dataset(dataset) for function in self._functions]
        for keys in all_keys:
            groups: Dict[Hashable, List[int]] = {}
            for index, key in enumerate(keys):
                groups.setdefault(key, []).append(index)
            table: Dict[Hashable, Bucket] = {}
            for key, members in groups.items():
                indices = np.asarray(members, dtype=np.intp)
                if ranks is not None:
                    member_ranks = ranks[indices]
                    order = np.argsort(member_ranks, kind="stable")
                    table[key] = Bucket(indices[order], member_ranks[order])
                else:
                    table[key] = Bucket(indices)
            self._tables.append(table)
        self._fitted = True
        return self

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_points(self) -> int:
        """Number of indexed points."""
        return self._n

    @property
    def num_tables(self) -> int:
        """Number of hash tables ``L``."""
        return self.l

    @property
    def ranks(self) -> Optional[np.ndarray]:
        """The rank array used at construction time, if any."""
        return self._ranks

    def bucket_sizes(self) -> List[Dict[Hashable, int]]:
        """Size of every bucket per table (useful for diagnostics/tests)."""
        self._check_fitted()
        return [{key: len(bucket) for key, bucket in table.items()} for table in self._tables]

    def total_stored_references(self) -> int:
        """Total number of point references stored across all tables."""
        self._check_fitted()
        return sum(len(bucket) for table in self._tables for bucket in table.values())

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query_keys(self, query: Point) -> List[Hashable]:
        """The bucket key of *query* in each table."""
        if self._batch_hasher is not None:
            return self._batch_hasher.keys_for_point(query)
        return [function(query) for function in self._functions]

    def query_buckets(self, query: Point) -> List[Bucket]:
        """The (possibly empty) bucket colliding with *query* in each table."""
        self._check_fitted()
        empty = Bucket(np.empty(0, dtype=np.intp), None if self._ranks is None else np.empty(0, dtype=self._ranks.dtype))
        keys = self.query_keys(query)
        return [table.get(key, empty) for table, key in zip(self._tables, keys)]

    def query_candidates(self, query: Point) -> np.ndarray:
        """Unique indices of all points colliding with *query* in any table."""
        buckets = self.query_buckets(query)
        if not buckets:
            return np.empty(0, dtype=np.intp)
        stacked = np.concatenate([b.indices for b in buckets]) if buckets else np.empty(0, dtype=np.intp)
        return np.unique(stacked)

    def query_candidates_multiset(self, query: Point) -> np.ndarray:
        """Indices of colliding points *with* multiplicity across tables."""
        buckets = self.query_buckets(query)
        if not buckets:
            return np.empty(0, dtype=np.intp)
        return np.concatenate([b.indices for b in buckets])

    def rank_range_candidates(self, query: Point, lo: int, hi: int) -> np.ndarray:
        """Unique colliding indices with rank in ``[lo, hi)`` (Section 4, step 3b)."""
        self._check_fitted()
        if self._ranks is None:
            raise InvalidParameterError("tables were built without ranks; rank-range queries unavailable")
        parts = [bucket.rank_range(lo, hi) for bucket in self.query_buckets(query)]
        parts = [p for p in parts if p.size]
        if not parts:
            return np.empty(0, dtype=np.intp)
        return np.unique(np.concatenate(parts))

    def collision_counts(self, query: Point) -> Dict[int, int]:
        """Map point index -> number of tables in which it collides with *query*."""
        counts: Dict[int, int] = {}
        for bucket in self.query_buckets(query):
            for index in bucket.indices:
                index = int(index)
                counts[index] = counts.get(index, 0) + 1
        return counts

    # ------------------------------------------------------------------
    def _check_fitted(self) -> None:
        if not self._fitted:
            raise EmptyDatasetError("LSHTables.fit must be called before querying")

"""p-stable (Gaussian projection) LSH family for Euclidean distance (E2LSH).

A hash function projects the point onto a random Gaussian direction, shifts
it by a random offset and quantizes into buckets of width ``w``.  The
collision probability of two points at Euclidean distance ``d`` is the
classical Datar-Immorlica-Indyk-Mirrokni expression

    p(d) = 1 - 2 * Phi(-w/d) - (2 d / (sqrt(2 pi) w)) * (1 - exp(-w^2 / (2 d^2)))

which is monotonically decreasing in ``d``.
"""

from __future__ import annotations

import math
from typing import Hashable, List

import numpy as np

from repro.distances.euclidean import EuclideanDistance
from repro.exceptions import InvalidParameterError
from repro.lsh.family import HashFunction, LSHFamily
from repro.types import Dataset, Point
from repro.registry import register_lsh_family


def _standard_normal_cdf(x: float) -> float:
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


class PStableHashFunction(HashFunction):
    """``h(x) = floor((<a, x> + b) / w)`` with Gaussian ``a``, uniform ``b``."""

    def __init__(self, direction: np.ndarray, offset: float, width: float):
        self._direction = np.asarray(direction, dtype=float)
        self._offset = float(offset)
        self._width = float(width)

    def __call__(self, point: Point) -> Hashable:
        projection = float(np.dot(np.asarray(point, dtype=float), self._direction))
        return int(math.floor((projection + self._offset) / self._width))

    def hash_dataset(self, dataset: Dataset) -> List[Hashable]:
        data = np.asarray(dataset, dtype=float)
        values = np.floor((data @ self._direction + self._offset) / self._width)
        return [int(v) for v in values]


@register_lsh_family("pstable")
class PStableFamily(LSHFamily):
    """Gaussian (2-stable) projection family for Euclidean distance."""

    def __init__(self, dim: int, width: float = 4.0):
        if dim < 1:
            raise InvalidParameterError(f"dimension must be >= 1, got {dim}")
        if width <= 0:
            raise InvalidParameterError(f"bucket width must be positive, got {width}")
        self.dim = int(dim)
        self.width = float(width)
        self.measure = EuclideanDistance()

    def sample(self, rng: np.random.Generator) -> PStableHashFunction:
        direction = rng.standard_normal(self.dim)
        offset = float(rng.uniform(0.0, self.width))
        return PStableHashFunction(direction, offset, self.width)

    def collision_probability(self, value: float) -> float:
        if value < 0:
            raise InvalidParameterError(f"distance must be non-negative, got {value}")
        if value == 0.0:
            return 1.0
        ratio = self.width / value
        term_cdf = 1.0 - 2.0 * _standard_normal_cdf(-ratio)
        term_density = (
            2.0 / (math.sqrt(2.0 * math.pi) * ratio) * (1.0 - math.exp(-(ratio**2) / 2.0))
        )
        return max(0.0, term_cdf - term_density)

"""Abstract LSH family interface and AND-composition.

An LSH family (Definition 3 of the paper) is a distribution over hash
functions such that the collision probability of two points is a function of
their (dis)similarity.  The samplers only rely on three operations:

* draw a random hash function (:meth:`LSHFamily.sample`),
* evaluate it on a point or a whole dataset (:class:`HashFunction`),
* evaluate the collision-probability curve
  (:meth:`LSHFamily.collision_probability`), which parameter selection uses
  to choose the concatenation length ``K`` and the number of repetitions
  ``L``.
"""

from __future__ import annotations

import abc
from typing import Hashable, List, Sequence

import numpy as np

from repro.distances.base import Measure
from repro.exceptions import InvalidParameterError
from repro.rng import SeedLike, ensure_rng
from repro.types import Dataset, Point


class HashFunction(abc.ABC):
    """A single hash function drawn from an LSH family."""

    @abc.abstractmethod
    def __call__(self, point: Point) -> Hashable:
        """Hash a single point to a hashable bucket key."""

    def hash_dataset(self, dataset: Dataset) -> List[Hashable]:
        """Hash every point of *dataset*; subclasses may vectorize this."""
        return [self(p) for p in dataset]


class BatchHasher(abc.ABC):
    """Vectorized evaluation of *many* hash functions at once.

    Hashing loops in pure Python dominate the construction and query cost of
    LSH structures with hundreds of tables; families that can evaluate all
    their drawn functions with numpy expose a batch hasher through
    :meth:`LSHFamily.make_batch_hasher` and the table layer uses it
    transparently.
    """

    @abc.abstractmethod
    def keys_for_point(self, point: Point) -> List[Hashable]:
        """One bucket key per wrapped hash function for a single point."""

    @abc.abstractmethod
    def keys_for_dataset(self, dataset: Dataset) -> List[List[Hashable]]:
        """Per wrapped function, the bucket key of every dataset point."""

    def keys_for_points(self, points: Dataset) -> List[List[Hashable]]:
        """Per *query point*, the bucket key under every wrapped function.

        This is the transpose of :meth:`keys_for_dataset` and is the entry
        point used by batched query execution: hashing a whole batch of
        queries in one vectorized pass instead of once per query.  Subclasses
        whose per-function layout makes the transpose expensive may override.
        """
        per_function = self.keys_for_dataset(points)
        return [list(row) for row in zip(*per_function)] if per_function else []


class LSHFamily(abc.ABC):
    """A distribution over locality sensitive hash functions."""

    #: The measure whose value parameterises the collision probability curve.
    measure: Measure

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator) -> HashFunction:
        """Draw a random hash function from the family."""

    @abc.abstractmethod
    def collision_probability(self, value: float) -> float:
        """Collision probability of two points at measure value *value*."""

    def make_batch_hasher(self, functions: Sequence[HashFunction]):
        """Return a :class:`BatchHasher` for *functions*, or ``None``.

        The default implementation returns ``None``, meaning the table layer
        falls back to calling each function individually.
        """
        return None

    def sample_many(self, count: int, seed: SeedLike = None) -> List[HashFunction]:
        """Draw *count* i.i.d. hash functions."""
        if count < 0:
            raise InvalidParameterError(f"count must be non-negative, got {count}")
        rng = ensure_rng(seed)
        return [self.sample(rng) for _ in range(count)]

    def concatenate(self, k: int) -> "ConcatenatedFamily":
        """Return the AND-composition of *k* independent copies of the family."""
        return ConcatenatedFamily(self, k)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class _ConcatenatedHash(HashFunction):
    """Tuple of ``k`` independent hash values (AND-composition)."""

    def __init__(self, parts: Sequence[HashFunction]):
        self._parts = list(parts)

    def __call__(self, point: Point) -> Hashable:
        return tuple(h(point) for h in self._parts)

    def hash_dataset(self, dataset: Dataset) -> List[Hashable]:
        columns = [h.hash_dataset(dataset) for h in self._parts]
        return list(zip(*columns)) if columns else [() for _ in range(len(dataset))]


class ConcatenatedFamily(LSHFamily):
    """AND-composition ``H^K`` of a base family.

    Two points collide under the concatenated function only if they collide
    under every one of the ``k`` independent base functions, so the collision
    probability becomes ``p^k``.  This is the standard way to drive the
    far-point collision probability ``p2`` below ``1/n`` (Section 2.2).
    """

    def __init__(self, base: LSHFamily, k: int):
        if k < 1:
            raise InvalidParameterError(f"concatenation length must be >= 1, got {k}")
        self.base = base
        self.k = int(k)
        self.measure = base.measure

    def sample(self, rng: np.random.Generator) -> HashFunction:
        return _ConcatenatedHash([self.base.sample(rng) for _ in range(self.k)])

    def collision_probability(self, value: float) -> float:
        return self.base.collision_probability(value) ** self.k

    def make_batch_hasher(self, functions: Sequence[HashFunction]):
        """Batch-evaluate concatenated functions via the base family's hasher.

        The ``L`` concatenated functions are flattened into ``L * k`` base
        functions, handed to the base family's batch hasher, and the results
        are regrouped into ``k``-tuples.
        """
        parts: List[HashFunction] = []
        for function in functions:
            if not isinstance(function, _ConcatenatedHash):
                return None
            parts.extend(function._parts)
        base_hasher = self.base.make_batch_hasher(parts)
        if base_hasher is None:
            return None
        return _ConcatenatedBatchHasher(base_hasher, self.k, len(functions))


class _ConcatenatedBatchHasher(BatchHasher):
    """Regroup a flat batch hasher's outputs into ``k``-tuples per table."""

    def __init__(self, base: BatchHasher, k: int, num_functions: int):
        self._base = base
        self._k = k
        self._num_functions = num_functions

    def keys_for_point(self, point: Point) -> List[Hashable]:
        flat = self._base.keys_for_point(point)
        return [
            tuple(flat[table * self._k + part] for part in range(self._k))
            for table in range(self._num_functions)
        ]

    def keys_for_dataset(self, dataset: Dataset) -> List[List[Hashable]]:
        flat = self._base.keys_for_dataset(dataset)
        grouped: List[List[Hashable]] = []
        for table in range(self._num_functions):
            columns = [flat[table * self._k + part] for part in range(self._k)]
            grouped.append(list(zip(*columns)))
        return grouped

"""MinHash and 1-bit minwise hashing for Jaccard similarity.

The paper's experiments (Section 6) use "standard MinHash [Broder 1997]
applying the 1-bit scheme of Li and König".  A MinHash function maps a set to
the minimum of a random hash over its elements; two sets agree on that value
with probability equal to their Jaccard similarity.  The 1-bit scheme keeps
only the lowest-order bit of the minimum, halving the bucket key size; the
collision probability becomes ``(1 + s) / 2`` for sets with Jaccard
similarity ``s``.

Item hashing uses a seeded splitmix64-style mixer rather than a linear
``(a x + b) mod p`` universal hash: linear hashes are only approximately
min-wise independent and visibly distort collision probabilities on
structured item sets, whereas the 64-bit mixer is indistinguishable from a
random function for this purpose (collisions between distinct items happen
with probability ~2^-64 and are irrelevant).

Because the LSH structures of the paper use hundreds of tables, hashing every
set with every function in a Python loop would dominate the running time.
Both families therefore expose a vectorized *batch hasher* (see
:class:`repro.lsh.family.BatchHasher`): the seeds of all drawn functions are
stacked into an array and whole datasets are hashed with a handful of numpy
operations over a CSR-like flattened item representation.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Sequence

import numpy as np

from repro.distances.jaccard import JaccardSimilarity
from repro.exceptions import InvalidParameterError, UnsupportedDataTypeError
from repro.lsh.family import BatchHasher, HashFunction, LSHFamily
from repro.types import Dataset, Point
from repro.registry import register_lsh_family

#: Bucket key reserved for the empty set (no element to take a minimum over).
_EMPTY_SET_KEY = -1

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX_1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_2 = np.uint64(0x94D049BB133111EB)
#: Hash values are truncated to 63 bits so they always fit in a signed int64
#: (bucket keys and rank arrays use signed integers throughout).
_MASK_63 = np.uint64((1 << 63) - 1)


def _splitmix64(values: np.ndarray, seed) -> np.ndarray:
    """Seeded splitmix64 finalizer applied elementwise (broadcasts over seeds)."""
    with np.errstate(over="ignore"):
        z = values + (seed + _GOLDEN)
        z = (z ^ (z >> np.uint64(30))) * _MIX_1
        z = (z ^ (z >> np.uint64(27))) * _MIX_2
        z = z ^ (z >> np.uint64(31))
    return z & _MASK_63


def _point_items(point: Point) -> np.ndarray:
    if not isinstance(point, (set, frozenset)):
        raise UnsupportedDataTypeError(
            f"MinHash expects set-valued points, got {type(point).__name__}"
        )
    return np.fromiter((int(x) for x in point), dtype=np.uint64, count=len(point))


class MinHashFunction(HashFunction):
    """A single MinHash function ``h(X) = min_{x in X} psi_seed(x)``."""

    def __init__(self, seed: int):
        self.seed = np.uint64(seed)

    def __call__(self, point: Point) -> Hashable:
        items = _point_items(point)
        if items.size == 0:
            return _EMPTY_SET_KEY
        return int(_splitmix64(items, self.seed).min())


class OneBitMinHashFunction(HashFunction):
    """1-bit minwise hash of Li and König: the parity of the MinHash value."""

    def __init__(self, seed: int):
        self._inner = MinHashFunction(seed)

    @property
    def seed(self) -> np.uint64:
        """The seed of the underlying MinHash function."""
        return self._inner.seed

    def __call__(self, point: Point) -> Hashable:
        value = self._inner(point)
        if value == _EMPTY_SET_KEY:
            return _EMPTY_SET_KEY
        return int(value) & 1


class _MinHashBatchHasher(BatchHasher):
    """Vectorized evaluation of many MinHash functions.

    ``seeds`` holds one uint64 seed per wrapped function; ``one_bit`` selects
    the Li-König reduction.  Datasets are flattened into a single item array
    plus segment offsets so that ``numpy.minimum.reduceat`` computes all
    per-set minima at once; functions are processed in chunks to bound peak
    memory.
    """

    def __init__(self, seeds: np.ndarray, one_bit: bool, chunk_size: int = 64):
        self._seeds = seeds.astype(np.uint64)
        self._one_bit = one_bit
        self._chunk_size = max(1, int(chunk_size))

    # ------------------------------------------------------------------
    def _finalize(self, minima: np.ndarray) -> np.ndarray:
        if self._one_bit:
            return (minima & np.uint64(1)).astype(np.int64)
        return minima.astype(np.int64)

    def keys_for_point(self, point: Point) -> List[Hashable]:
        items = _point_items(point)
        if items.size == 0:
            return [_EMPTY_SET_KEY] * self._seeds.size
        keys: List[Hashable] = []
        for start in range(0, self._seeds.size, self._chunk_size):
            stop = min(self._seeds.size, start + self._chunk_size)
            seeds = self._seeds[start:stop, None]
            minima = _splitmix64(items[None, :], seeds).min(axis=1)
            # tolist() converts to Python ints in C — the per-element int()
            # loop this replaces dominated batched hashing profiles.
            keys.extend(self._finalize(minima).tolist())
        return keys

    def keys_for_dataset(self, dataset: Dataset) -> List[List[Hashable]]:
        sizes = np.array([len(point) for point in dataset], dtype=np.int64)
        non_empty = sizes > 0
        flat = (
            np.concatenate([_point_items(point) for point in dataset if len(point) > 0])
            if non_empty.any()
            else np.empty(0, dtype=np.uint64)
        )
        offsets = np.zeros(int(non_empty.sum()), dtype=np.int64)
        if offsets.size > 1:
            offsets[1:] = np.cumsum(sizes[non_empty])[:-1]

        keys: List[List[Hashable]] = []
        for start in range(0, self._seeds.size, self._chunk_size):
            stop = min(self._seeds.size, start + self._chunk_size)
            seeds = self._seeds[start:stop, None]
            if flat.size:
                hashed = _splitmix64(flat[None, :], seeds)
                minima = np.minimum.reduceat(hashed, offsets, axis=1)
                minima = self._finalize(minima)
            else:
                minima = np.empty((stop - start, 0), dtype=np.int64)
            for row in minima:
                full_row = np.full(len(dataset), _EMPTY_SET_KEY, dtype=np.int64)
                full_row[non_empty] = row
                keys.append(full_row.tolist())
        return keys


def _batch_hasher_from(
    functions: Sequence[HashFunction], expected_type, one_bit: bool
) -> Optional[_MinHashBatchHasher]:
    seeds = []
    for function in functions:
        if not isinstance(function, expected_type):
            return None
        seeds.append(np.uint64(function.seed))
    if not seeds:
        return None
    return _MinHashBatchHasher(np.asarray(seeds, dtype=np.uint64), one_bit=one_bit)


@register_lsh_family("minhash")
class MinHashFamily(LSHFamily):
    """The classical MinHash family: collision probability equals Jaccard."""

    def __init__(self) -> None:
        self.measure = JaccardSimilarity()

    def sample(self, rng: np.random.Generator) -> MinHashFunction:
        return MinHashFunction(int(rng.integers(0, 2**63 - 1)))

    def collision_probability(self, value: float) -> float:
        if not 0.0 <= value <= 1.0:
            raise InvalidParameterError(f"Jaccard similarity must be in [0, 1], got {value}")
        return float(value)

    def make_batch_hasher(self, functions: Sequence[HashFunction]):
        return _batch_hasher_from(functions, MinHashFunction, one_bit=False)


@register_lsh_family("onebit_minhash")
class OneBitMinHashFamily(LSHFamily):
    """1-bit minwise hashing: collision probability ``(1 + s) / 2``.

    The extra ``1/2`` baseline comes from unrelated sets colliding on the
    parity bit half of the time; concatenating ``K`` functions still yields a
    usable gap between near and far points and keeps bucket keys tiny.
    """

    def __init__(self) -> None:
        self.measure = JaccardSimilarity()

    def sample(self, rng: np.random.Generator) -> OneBitMinHashFunction:
        return OneBitMinHashFunction(int(rng.integers(0, 2**63 - 1)))

    def collision_probability(self, value: float) -> float:
        if not 0.0 <= value <= 1.0:
            raise InvalidParameterError(f"Jaccard similarity must be in [0, 1], got {value}")
        return 0.5 * (1.0 + float(value))

    def make_batch_hasher(self, functions: Sequence[HashFunction]):
        return _batch_hasher_from(functions, OneBitMinHashFunction, one_bit=True)

"""Shared type aliases and light-weight data containers.

The library works over two concrete data representations:

* **vector data** — a 2-D ``numpy.ndarray`` of shape ``(n, d)``; a query is a
  1-D array of length ``d``.  Used for Euclidean, angular and inner-product
  similarity.
* **set data** — a Python sequence of ``frozenset`` of integer item ids; a
  query is a single ``frozenset``.  Used for Jaccard similarity (the
  representation of the MovieLens / Last.FM experiments in the paper).

The aliases below are deliberately permissive (``Sequence`` rather than
``list``) so that callers can pass tuples, lists or numpy object arrays.
"""

from __future__ import annotations

from typing import FrozenSet, Sequence, Union

import numpy as np

#: A single set-valued data point (e.g. the set of movies a user rated >= 4).
SetPoint = FrozenSet[int]

#: A dataset of set-valued points.
SetDataset = Sequence[SetPoint]

#: A single vector-valued data point.
VectorPoint = np.ndarray

#: A dataset of vector-valued points, shape ``(n, d)``.
VectorDataset = np.ndarray

#: Any supported query point.
Point = Union[SetPoint, VectorPoint]

#: Any supported dataset.
Dataset = Union[SetDataset, VectorDataset]


def is_set_data(dataset: Dataset) -> bool:
    """Return True if *dataset* looks like set-valued data.

    A dataset is treated as set data when it is a non-numpy sequence whose
    first element is a ``set`` / ``frozenset``.  Empty sequences default to
    set data (nothing can be hashed from them anyway).
    """
    if isinstance(dataset, np.ndarray) and dataset.dtype != object:
        return False
    if len(dataset) == 0:
        return True
    return isinstance(dataset[0], (set, frozenset))


def dataset_size(dataset: Dataset) -> int:
    """Number of points in *dataset*, for either representation."""
    return len(dataset)


def as_set_point(point) -> SetPoint:
    """Coerce *point* (any iterable of ints) into a ``frozenset``."""
    if isinstance(point, frozenset):
        return point
    return frozenset(int(x) for x in point)


def as_set_dataset(points) -> list:
    """Coerce an iterable of iterables into a list of ``frozenset``."""
    return [as_set_point(p) for p in points]
